package mpi

import (
	"encoding/binary"
	"fmt"
	"sort"
	"sync"

	"dcgn/internal/sim"
)

// Comm is a communicator: an ordered group of world ranks with an isolated
// tag context. The zero communicator does not exist; obtain the world
// communicator from World.Comm and derive groups with Split.
type Comm struct {
	w  *World
	id int
	// members maps comm rank -> world rank.
	members []int
	// index maps world rank -> comm rank.
	index map[int]int
	// splits counts Split calls made on this communicator (per member,
	// but all members call collectives in the same order, so the local
	// count agrees everywhere — MPI's ordering requirement). mu guards it:
	// in a sharded world, members on different shards call Split
	// concurrently. Host-side bookkeeping only; the per-member counts are
	// independent, so locking cannot perturb determinism.
	mu     sync.Mutex
	splits map[int]int
}

// ctxStride separates the tag spaces of different communicators; user
// tags must stay below it.
const ctxStride = 1 << 16

// MaxUserTag is the largest tag usable with communicator operations.
const MaxUserTag = ctxStride - 1

// Comm returns the world communicator containing every rank. The world
// constructors call it eagerly, so lookups after construction are
// read-only even in sharded worlds.
func (w *World) Comm() *Comm {
	if w.world == nil {
		members := make([]int, len(w.ranks))
		for i := range members {
			members[i] = i
		}
		w.world = w.newComm(0, members)
	}
	return w.world
}

// newComm builds a communicator structure.
func (w *World) newComm(id int, members []int) *Comm {
	c := &Comm{w: w, id: id, members: members, index: make(map[int]int, len(members)), splits: map[int]int{}}
	for i, wr := range members {
		c.index[wr] = i
	}
	return c
}

// NewGroupComm builds a communicator over an explicit, strictly ascending
// set of world ranks without any collective exchange — the host-side
// constructor a multi-tenant runtime uses to give each admitted job an
// isolated tag context over the nodes it was placed on. Unlike Split it
// involves no traffic, so it can be called before (or between) the
// members' procs running; every caller passing the same member set gets a
// communicator with the same context id.
func (w *World) NewGroupComm(members []int) *Comm {
	if len(members) == 0 {
		panic("mpi: NewGroupComm needs at least one member")
	}
	for i, m := range members {
		if m < 0 || m >= len(w.ranks) {
			panic(fmt.Sprintf("mpi: NewGroupComm member %d outside world of %d ranks", m, len(w.ranks)))
		}
		if i > 0 && members[i-1] >= m {
			panic("mpi: NewGroupComm members must be strictly ascending")
		}
	}
	// Key the id on the member set via the first member and length plus a
	// parent of -1 (never used by Split, whose parents are real comm ids);
	// distinct groups sharing (first, len) are disambiguated by a full-set
	// lookup under the same lock.
	w.commMu.Lock()
	defer w.commMu.Unlock()
	key := groupKey(members)
	if id, ok := w.groupIDs[key]; ok {
		return w.newComm(id, append([]int(nil), members...))
	}
	w.nextCommID++
	if w.groupIDs == nil {
		w.groupIDs = make(map[string]int)
	}
	w.groupIDs[key] = w.nextCommID
	return w.newComm(w.nextCommID, append([]int(nil), members...))
}

// groupKey serializes a member set for NewGroupComm's id map.
func groupKey(members []int) string {
	b := make([]byte, 0, 4*len(members))
	for _, m := range members {
		var e [4]byte
		binary.LittleEndian.PutUint32(e[:], uint32(m))
		b = append(b, e[:]...)
	}
	return string(b)
}

// commID returns the stable id for a communicator derived from (parent,
// split sequence, color): every member computing the same key receives the
// same id.
func (w *World) commID(parent, seq, color int) int {
	w.commMu.Lock()
	defer w.commMu.Unlock()
	key := [3]int{parent, seq, color}
	if id, ok := w.commIDs[key]; ok {
		return id
	}
	w.nextCommID++
	w.commIDs[key] = w.nextCommID
	return w.nextCommID
}

// Size returns the number of ranks in the communicator.
func (c *Comm) Size() int { return len(c.members) }

// ID returns the communicator's context id (0 = world).
func (c *Comm) ID() int { return c.id }

// RankOf returns r's rank within the communicator, panicking if r is not
// a member.
func (c *Comm) RankOf(r *Rank) int {
	cr, ok := c.index[r.id]
	if !ok {
		panic(fmt.Sprintf("mpi: rank %d is not a member of comm %d", r.id, c.id))
	}
	return cr
}

// Member reports whether r belongs to the communicator.
func (c *Comm) Member(r *Rank) bool {
	_, ok := c.index[r.id]
	return ok
}

// Translate converts a comm rank to its world rank.
func (c *Comm) Translate(commRank int) int {
	if commRank < 0 || commRank >= len(c.members) {
		panic(fmt.Sprintf("mpi: comm %d has no rank %d", c.id, commRank))
	}
	return c.members[commRank]
}

// ctxTag moves a user tag into this communicator's context.
func (c *Comm) ctxTag(tag int) int {
	if tag != AnyTag && (tag < 0 || tag > MaxUserTag) {
		panic(fmt.Sprintf("mpi: tag %d outside [0,%d] for communicator ops", tag, MaxUserTag))
	}
	if tag == AnyTag {
		return AnyTag
	}
	return c.id*ctxStride + tag
}

// Send sends within the communicator; dst is a comm rank.
func (c *Comm) Send(p *sim.Proc, r *Rank, buf []byte, dst, tag int) error {
	return r.Send(p, buf, c.Translate(dst), c.ctxTag(tag))
}

// Recv receives within the communicator; src is a comm rank or AnySource.
// The returned Status.Source is a comm rank.
func (c *Comm) Recv(p *sim.Proc, r *Rank, buf []byte, src, tag int) (Status, error) {
	wsrc := src
	if src != AnySource {
		wsrc = c.Translate(src)
	}
	st, err := r.Recv(p, buf, wsrc, c.ctxTag(tag))
	if err == nil || err == ErrTruncate {
		st.Source = c.index[st.Source]
	}
	return st, err
}

// Isend is the nonblocking communicator send.
func (c *Comm) Isend(p *sim.Proc, r *Rank, buf []byte, dst, tag int) *Request {
	return r.Isend(p, buf, c.Translate(dst), c.ctxTag(tag))
}

// Irecv is the nonblocking communicator receive. Statuses report world
// ranks; use RankOfWorld to translate if needed.
func (c *Comm) Irecv(p *sim.Proc, r *Rank, buf []byte, src, tag int) *Request {
	wsrc := src
	if src != AnySource {
		wsrc = c.Translate(src)
	}
	return r.Irecv(p, buf, wsrc, c.ctxTag(tag))
}

// Split partitions the communicator by color, ordering each new group by
// (key, world rank) — MPI_Comm_split. Every member must call Split
// collectively, in the same order relative to other collectives. A
// negative color returns nil (MPI_UNDEFINED): the caller joins no group.
func (c *Comm) Split(p *sim.Proc, r *Rank, color, key int) (*Comm, error) {
	me := c.RankOf(r)
	c.mu.Lock()
	seq := c.splits[me]
	c.splits[me] = seq + 1
	c.mu.Unlock()

	// Allgather (color, key, worldRank) triplets.
	mine := make([]byte, 12)
	binary.LittleEndian.PutUint32(mine[0:], uint32(int32(color)))
	binary.LittleEndian.PutUint32(mine[4:], uint32(int32(key)))
	binary.LittleEndian.PutUint32(mine[8:], uint32(int32(r.id)))
	all := make([]byte, 12*c.Size())
	if err := c.Allgather(p, r, mine, all); err != nil {
		return nil, err
	}
	if color < 0 {
		return nil, nil
	}
	type entry struct{ key, world int }
	var group []entry
	for i := 0; i < c.Size(); i++ {
		ci := int(int32(binary.LittleEndian.Uint32(all[12*i:])))
		ki := int(int32(binary.LittleEndian.Uint32(all[12*i+4:])))
		wi := int(int32(binary.LittleEndian.Uint32(all[12*i+8:])))
		if ci == color {
			group = append(group, entry{ki, wi})
		}
	}
	sort.Slice(group, func(i, j int) bool {
		if group[i].key != group[j].key {
			return group[i].key < group[j].key
		}
		return group[i].world < group[j].world
	})
	members := make([]int, len(group))
	for i, e := range group {
		members[i] = e.world
	}
	return c.w.newComm(c.w.commID(c.id, seq, color), members), nil
}
