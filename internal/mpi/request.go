package mpi

import "dcgn/internal/sim"

// WaitAll blocks p until every request completes, returning the statuses
// in order and the first error encountered (all requests are still waited
// for, like MPI_Waitall).
func WaitAll(p *sim.Proc, reqs ...*Request) ([]Status, error) {
	stats := make([]Status, len(reqs))
	var firstErr error
	for i, r := range reqs {
		st, err := r.Wait(p)
		stats[i] = st
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return stats, firstErr
}

// WaitAny blocks p until at least one of the requests completes and
// returns its index, status and error. With several already-complete
// requests the lowest index wins (deterministic, unlike MPI's unspecified
// choice).
func WaitAny(p *sim.Proc, reqs ...*Request) (int, Status, error) {
	if len(reqs) == 0 {
		panic("mpi: WaitAny with no requests")
	}
	for i, r := range reqs {
		if st, done := r.Test(); done {
			return i, st, *r.err
		}
	}
	// Nothing complete yet: fan the individual completion events into one
	// shared event via watcher daemons (daemons, so watchers of requests
	// that complete later — or never — do not keep the simulation alive).
	s := p.Sim()
	shared := s.NewEvent("waitany")
	for _, r := range reqs {
		req := r
		s.SpawnDaemon("mpi-waitany", func(w *sim.Proc) {
			req.done.Wait(w)
			shared.Fire()
		})
	}
	shared.Wait(p)
	for i, r := range reqs {
		if st, done := r.Test(); done {
			return i, st, *r.err
		}
	}
	panic("mpi: WaitAny woke with no completed request")
}
