package mpi

import (
	"fmt"
	"math/bits"

	"dcgn/internal/sim"
)

// Collective operations use a reserved tag range far above user and
// communicator tag contexts. Per-sender non-overtaking makes the matching
// of back-to-back collectives of the same kind safe; the round number
// disambiguates phases within one collective and the communicator id
// isolates overlapping groups.
const collTagBase = 1 << 28

func (c *Comm) collTag(op, round int) int {
	return collTagBase + c.id<<12 + op<<6 + round
}

const (
	opBarrier = iota
	opBcast
	opGather
	opScatter
	opAllgather
	opAlltoall
	opReduce
)

// collHop charges the per-level collective overhead for an n-byte hop.
func (r *Rank) collHop(p *sim.Proc, n int) {
	if n >= collHopMinSize && r.w.cfg.CollHopOverhead > 0 {
		p.SleepJit(r.w.cfg.CollHopOverhead)
	}
}

// --- World-communicator convenience wrappers on Rank -------------------

// Barrier blocks until every rank in the world has entered it.
func (r *Rank) Barrier(p *sim.Proc) { r.w.Comm().Barrier(p, r) }

// Bcast broadcasts root's buf to every rank (binomial tree). All ranks
// must pass buffers of equal length.
func (r *Rank) Bcast(p *sim.Proc, buf []byte, root int) error {
	return r.w.Comm().Bcast(p, r, buf, root)
}

// Gather collects equal-sized contributions at root: rank i's sendBuf
// lands at recvBuf[i*len(sendBuf)]. recvBuf is only used at root.
func (r *Rank) Gather(p *sim.Proc, sendBuf, recvBuf []byte, root int) error {
	return r.w.Comm().Gather(p, r, sendBuf, recvBuf, root)
}

// Gatherv collects variable-sized contributions at root, packed
// contiguously in rank order: rank i contributes counts[i] bytes.
func (r *Rank) Gatherv(p *sim.Proc, sendBuf, recvBuf []byte, counts []int, root int) error {
	return r.w.Comm().Gatherv(p, r, sendBuf, recvBuf, counts, root)
}

// Scatter distributes equal-sized chunks of root's sendBuf: rank i
// receives sendBuf[i*len(recvBuf)] into recvBuf.
func (r *Rank) Scatter(p *sim.Proc, sendBuf, recvBuf []byte, root int) error {
	return r.w.Comm().Scatter(p, r, sendBuf, recvBuf, root)
}

// Scatterv distributes variable-sized chunks (packed contiguously in rank
// order) from root; rank i receives counts[i] bytes into recvBuf.
func (r *Rank) Scatterv(p *sim.Proc, sendBuf []byte, counts []int, recvBuf []byte, root int) error {
	return r.w.Comm().Scatterv(p, r, sendBuf, counts, recvBuf, root)
}

// Allgather gathers every rank's sendBuf into every rank's recvBuf (ring
// algorithm). recvBuf must be world-size times len(sendBuf).
func (r *Rank) Allgather(p *sim.Proc, sendBuf, recvBuf []byte) error {
	return r.w.Comm().Allgather(p, r, sendBuf, recvBuf)
}

// Alltoall exchanges chunk j of rank i's sendBuf into chunk i of rank j's
// recvBuf (pairwise exchange).
func (r *Rank) Alltoall(p *sim.Proc, sendBuf, recvBuf []byte, count int) error {
	return r.w.Comm().Alltoall(p, r, sendBuf, recvBuf, count)
}

// Reduce folds every rank's sendBuf element-wise into recvBuf at root
// (binomial tree). recvBuf is only used at root.
func (r *Rank) Reduce(p *sim.Proc, sendBuf, recvBuf []byte, dt Datatype, op Op, root int) error {
	return r.w.Comm().Reduce(p, r, sendBuf, recvBuf, dt, op, root)
}

// Allreduce is Reduce to rank 0 followed by Bcast.
func (r *Rank) Allreduce(p *sim.Proc, sendBuf, recvBuf []byte, dt Datatype, op Op) error {
	return r.w.Comm().Allreduce(p, r, sendBuf, recvBuf, dt, op)
}

// --- Communicator collective algorithms ---------------------------------

// Barrier blocks until every communicator member has entered it
// (dissemination algorithm, ceil(log2 n) rounds).
func (c *Comm) Barrier(p *sim.Proc, r *Rank) {
	n := c.Size()
	me := c.RankOf(r)
	p.SleepJit(r.w.cfg.CallOverhead)
	if n == 1 {
		return
	}
	var token [1]byte
	for k, round := 1, 0; k < n; k, round = k<<1, round+1 {
		dst := c.Translate((me + k) % n)
		src := c.Translate((me - k + n) % n)
		if _, err := r.Sendrecv(p, token[:], dst, c.collTag(opBarrier, round), token[:], src, c.collTag(opBarrier, round)); err != nil {
			panic(fmt.Sprintf("mpi: barrier: %v", err))
		}
	}
}

// bcastLargeMin is the payload size above which Config.TreeCollectives
// switches Bcast to the scatter–allgather algorithm (largeBcast).
const bcastLargeMin = 8 << 10

// Bcast broadcasts the root member's buf to every member (binomial tree);
// root is a comm rank. With Config.TreeCollectives, payloads larger than
// bcastLargeMin run as binomial scatter + ring allgather (largeBcast).
func (c *Comm) Bcast(p *sim.Proc, r *Rank, buf []byte, root int) error {
	n := c.Size()
	me := c.RankOf(r)
	p.SleepJit(r.w.cfg.CallOverhead)
	if n == 1 {
		return nil
	}
	if r.w.cfg.TreeCollectives && len(buf) > bcastLargeMin {
		return c.largeBcast(p, r, buf, root)
	}
	vr := (me - root + n) % n
	mask := 1
	for mask < n {
		if vr&mask != 0 {
			src := c.Translate((vr - mask + root) % n)
			r.collHop(p, len(buf))
			if _, err := r.Recv(p, buf, src, c.collTag(opBcast, 0)); err != nil {
				return err
			}
			break
		}
		mask <<= 1
	}
	mask >>= 1
	for mask > 0 {
		if vr+mask < n {
			dst := c.Translate((vr + mask + root) % n)
			r.collHop(p, len(buf))
			if err := r.Send(p, buf, dst, c.collTag(opBcast, 0)); err != nil {
				return err
			}
		}
		mask >>= 1
	}
	return nil
}

// largeBcast is the large-payload broadcast: a binomial-tree scatter of
// 1/n-size chunks followed by a ring allgather (van de Geijn's
// scatter–allgather). The plain binomial tree makes the root inject
// log2(n) FULL copies of the payload, so its NIC serialization is the
// floor on broadcast time no matter how the levels overlap; here the root
// injects about one payload's worth of bytes total (the scatter), and the
// ring moves 1/n-size chunks in parallel on every link, cutting the
// bandwidth term from ~log2(n)·B to ~2·B spread across all members.
//
// The allgather steps reuse the opBcast tag space with the step index in
// the tag's 6-bit round field (mod 64): each ring neighbor pair exchanges
// exactly one message per step, in step order, so per-sender
// non-overtaking delivery makes the wrap safe.
func (c *Comm) largeBcast(p *sim.Proc, r *Rank, buf []byte, root int) error {
	n := c.Size()
	me := c.RankOf(r)
	counts := make([]int, n)
	base, extra := len(buf)/n, len(buf)%n
	for i := range counts {
		counts[i] = base
		if i < extra {
			counts[i]++
		}
	}
	displs := displacements(counts)
	// Phase 1: scatter the chunks in place (binomial treeScatterv when
	// n > 2, which TreeCollectives guarantees is enabled).
	var send []byte
	if me == root {
		send = buf
	}
	if err := c.Scatterv(p, r, send, counts, buf[displs[me]:displs[me]+counts[me]], root); err != nil {
		return err
	}
	// Phase 2: ring allgather of the (ragged) chunks.
	right := c.Translate((me + 1) % n)
	left := c.Translate((me - 1 + n) % n)
	for step := 0; step < n-1; step++ {
		si := (me - step + n) % n
		ri := (me - step - 1 + n) % n
		r.collHop(p, max(counts[si], counts[ri]))
		if _, err := r.Sendrecv(p,
			buf[displs[si]:displs[si]+counts[si]], right, c.collTag(opBcast, step&63),
			buf[displs[ri]:displs[ri]+counts[ri]], left, c.collTag(opBcast, step&63)); err != nil {
			return err
		}
	}
	return nil
}

// Gather collects equal-sized contributions at the root member.
func (c *Comm) Gather(p *sim.Proc, r *Rank, sendBuf, recvBuf []byte, root int) error {
	counts := make([]int, c.Size())
	for i := range counts {
		counts[i] = len(sendBuf)
	}
	return c.Gatherv(p, r, sendBuf, recvBuf, counts, root)
}

// Gatherv collects variable-sized contributions at the root member. With
// Config.TreeCollectives it runs as a binomial tree (see treeGatherv);
// otherwise the root posts a flat fan-in of n-1 receives.
func (c *Comm) Gatherv(p *sim.Proc, r *Rank, sendBuf, recvBuf []byte, counts []int, root int) error {
	n := c.Size()
	me := c.RankOf(r)
	if len(counts) != n {
		panic("mpi: Gatherv counts length != communicator size")
	}
	p.SleepJit(r.w.cfg.CallOverhead)
	if r.w.cfg.TreeCollectives && n > 2 {
		return c.treeGatherv(p, r, sendBuf, recvBuf, counts, root)
	}
	if me != root {
		r.collHop(p, len(sendBuf))
		return r.Send(p, sendBuf, c.Translate(root), c.collTag(opGather, 0))
	}
	displs := displacements(counts)
	reqs := make([]*Request, 0, n-1)
	for i := 0; i < n; i++ {
		if i == root {
			copy(recvBuf[displs[i]:displs[i]+counts[i]], sendBuf)
			continue
		}
		r.collHop(p, counts[i])
		reqs = append(reqs, r.Irecv(p, recvBuf[displs[i]:displs[i]+counts[i]], c.Translate(i), c.collTag(opGather, 0)))
	}
	for _, req := range reqs {
		if _, err := req.Wait(p); err != nil {
			return err
		}
	}
	return nil
}

// Scatter distributes equal-sized chunks from the root member.
func (c *Comm) Scatter(p *sim.Proc, r *Rank, sendBuf, recvBuf []byte, root int) error {
	counts := make([]int, c.Size())
	for i := range counts {
		counts[i] = len(recvBuf)
	}
	return c.Scatterv(p, r, sendBuf, counts, recvBuf, root)
}

// Scatterv distributes variable-sized chunks from the root member. With
// Config.TreeCollectives it runs as a binomial tree (see treeScatterv);
// otherwise the root posts a flat fan-out of n-1 sends.
func (c *Comm) Scatterv(p *sim.Proc, r *Rank, sendBuf []byte, counts []int, recvBuf []byte, root int) error {
	n := c.Size()
	me := c.RankOf(r)
	if len(counts) != n {
		panic("mpi: Scatterv counts length != communicator size")
	}
	p.SleepJit(r.w.cfg.CallOverhead)
	if r.w.cfg.TreeCollectives && n > 2 {
		return c.treeScatterv(p, r, sendBuf, counts, recvBuf, root)
	}
	if me != root {
		r.collHop(p, counts[me])
		_, err := r.Recv(p, recvBuf[:counts[me]], c.Translate(root), c.collTag(opScatter, 0))
		return err
	}
	displs := displacements(counts)
	reqs := make([]*Request, 0, n-1)
	for i := 0; i < n; i++ {
		chunk := sendBuf[displs[i] : displs[i]+counts[i]]
		if i == root {
			copy(recvBuf, chunk)
			continue
		}
		r.collHop(p, len(chunk))
		reqs = append(reqs, r.Isend(p, chunk, c.Translate(i), c.collTag(opScatter, 0)))
	}
	for _, req := range reqs {
		if _, err := req.Wait(p); err != nil {
			return err
		}
	}
	return nil
}

// vrankBytes returns the packed-byte prefix sums in virtual-rank order
// for a tree collective rooted at root: vd[v+1]-vd[v] is the byte count
// of virtual rank v (comm rank (v+root)%n), so the bytes of the binomial
// subtree [lo,hi) are vd[hi]-vd[lo].
func vrankBytes(counts []int, root int) []int {
	n := len(counts)
	vd := make([]int, n+1)
	for v := 0; v < n; v++ {
		vd[v+1] = vd[v] + counts[(v+root)%n]
	}
	return vd
}

// subtreeEnd returns the exclusive upper virtual rank of vr's binomial
// subtree: [vr, vr+lowbit(vr)) clipped to n, the whole range for the root.
func subtreeEnd(vr, n int) int {
	if vr == 0 {
		return n
	}
	if end := vr + vr&-vr; end < n {
		return end
	}
	return n
}

// treeGatherv is the binomial-tree gather: each member accumulates its
// subtree's contributions (packed in virtual-rank order in a pooled
// scratch buffer) and forwards one message per level to its parent, so
// the root receives log2(n) messages instead of n-1 — the fix for the
// flat-rendezvous incast that serializes at the root's NIC at scale.
func (c *Comm) treeGatherv(p *sim.Proc, r *Rank, sendBuf, recvBuf []byte, counts []int, root int) error {
	n := c.Size()
	me := c.RankOf(r)
	vr := (me - root + n) % n
	vd := vrankBytes(counts, root)
	scratch := r.stagingPool().Get(vd[subtreeEnd(vr, n)] - vd[vr])
	defer r.stagingPool().Put(scratch)
	copy(scratch[:counts[me]], sendBuf)
	for mask := 1; mask < n; mask <<= 1 {
		round := bits.Len(uint(mask)) - 1
		if vr&mask != 0 {
			// Covered [vr, vr+mask) so far; ship it to the parent.
			parent := c.Translate((vr - mask + root) % n)
			nb := vd[minClip(vr+mask, n)] - vd[vr]
			r.collHop(p, nb)
			return r.Send(p, scratch[:nb], parent, c.collTag(opGather, round))
		}
		child := vr + mask
		if child < n {
			lo, hi := vd[child], vd[minClip(child+mask, n)]
			off := lo - vd[vr]
			r.collHop(p, hi-lo)
			if _, err := r.Recv(p, scratch[off:off+hi-lo], c.Translate((child+root)%n), c.collTag(opGather, round)); err != nil {
				return err
			}
		}
	}
	// Only the root (vr == 0) reaches here: unpack virtual-rank order into
	// the caller's comm-rank displacements.
	displs := displacements(counts)
	for v := 0; v < n; v++ {
		cr := (v + root) % n
		copy(recvBuf[displs[cr]:displs[cr]+counts[cr]], scratch[vd[v]:vd[v+1]])
	}
	return nil
}

// treeScatterv is the binomial-tree scatter: the root packs all chunks in
// virtual-rank order and each member forwards its children's subtree
// blocks level by level, bounding the root's fan-out to log2(n) sends.
func (c *Comm) treeScatterv(p *sim.Proc, r *Rank, sendBuf []byte, counts []int, recvBuf []byte, root int) error {
	n := c.Size()
	me := c.RankOf(r)
	vr := (me - root + n) % n
	vd := vrankBytes(counts, root)
	myBytes := vd[subtreeEnd(vr, n)] - vd[vr]
	scratch := r.stagingPool().Get(myBytes)
	defer r.stagingPool().Put(scratch)
	// mask ends at the bit linking vr to its parent (its lowest set bit),
	// or at the top of the tree for the root.
	mask := 1
	for mask < n && vr&mask == 0 {
		mask <<= 1
	}
	if vr == 0 {
		displs := displacements(counts)
		for v := 0; v < n; v++ {
			cr := (v + root) % n
			copy(scratch[vd[v]:vd[v+1]], sendBuf[displs[cr]:displs[cr]+counts[cr]])
		}
	} else {
		parent := c.Translate((vr - mask + root) % n)
		r.collHop(p, myBytes)
		if _, err := r.Recv(p, scratch, parent, c.collTag(opScatter, bits.Len(uint(mask))-1)); err != nil {
			return err
		}
	}
	for cm := mask >> 1; cm >= 1; cm >>= 1 {
		child := vr + cm
		if child >= n {
			continue
		}
		lo, hi := vd[child], vd[minClip(child+cm, n)]
		off := lo - vd[vr]
		r.collHop(p, hi-lo)
		if err := r.Send(p, scratch[off:off+hi-lo], c.Translate((child+root)%n), c.collTag(opScatter, bits.Len(uint(cm))-1)); err != nil {
			return err
		}
	}
	copy(recvBuf[:counts[me]], scratch[:counts[me]])
	return nil
}

// minClip clips a virtual rank to the communicator size.
func minClip(v, n int) int {
	if v < n {
		return v
	}
	return n
}

// Allgather gathers every member's sendBuf into every member's recvBuf
// (ring algorithm, n-1 steps).
func (c *Comm) Allgather(p *sim.Proc, r *Rank, sendBuf, recvBuf []byte) error {
	n := c.Size()
	me := c.RankOf(r)
	count := len(sendBuf)
	if len(recvBuf) != n*count {
		panic("mpi: Allgather recvBuf size mismatch")
	}
	p.SleepJit(r.w.cfg.CallOverhead)
	copy(recvBuf[me*count:(me+1)*count], sendBuf)
	if n == 1 {
		return nil
	}
	right := c.Translate((me + 1) % n)
	left := c.Translate((me - 1 + n) % n)
	for step := 0; step < n-1; step++ {
		sendIdx := (me - step + n) % n
		recvIdx := (me - step - 1 + n) % n
		r.collHop(p, count)
		if _, err := r.Sendrecv(p,
			recvBuf[sendIdx*count:(sendIdx+1)*count], right, c.collTag(opAllgather, step),
			recvBuf[recvIdx*count:(recvIdx+1)*count], left, c.collTag(opAllgather, step)); err != nil {
			return err
		}
	}
	return nil
}

// Alltoall exchanges chunk j of member i's sendBuf into chunk i of member
// j's recvBuf (pairwise exchange).
func (c *Comm) Alltoall(p *sim.Proc, r *Rank, sendBuf, recvBuf []byte, count int) error {
	n := c.Size()
	me := c.RankOf(r)
	if len(sendBuf) != n*count || len(recvBuf) != n*count {
		panic("mpi: Alltoall buffer size mismatch")
	}
	p.SleepJit(r.w.cfg.CallOverhead)
	copy(recvBuf[me*count:(me+1)*count], sendBuf[me*count:(me+1)*count])
	for step := 1; step < n; step++ {
		dst := (me + step) % n
		src := (me - step + n) % n
		r.collHop(p, count)
		if _, err := r.Sendrecv(p,
			sendBuf[dst*count:(dst+1)*count], c.Translate(dst), c.collTag(opAlltoall, step),
			recvBuf[src*count:(src+1)*count], c.Translate(src), c.collTag(opAlltoall, step)); err != nil {
			return err
		}
	}
	return nil
}

// Alltoallv is the variable-size all-to-all: member i sends
// sendCounts[j] bytes to member j (packed contiguously in member order in
// sendBuf) and receives recvCounts[j] bytes from member j (packed in
// recvBuf). Pairwise exchange, n-1 steps.
func (c *Comm) Alltoallv(p *sim.Proc, r *Rank, sendBuf []byte, sendCounts []int, recvBuf []byte, recvCounts []int) error {
	n := c.Size()
	me := c.RankOf(r)
	if len(sendCounts) != n || len(recvCounts) != n {
		panic("mpi: Alltoallv counts length != communicator size")
	}
	p.SleepJit(r.w.cfg.CallOverhead)
	sd := displacements(sendCounts)
	rd := displacements(recvCounts)
	copy(recvBuf[rd[me]:rd[me]+recvCounts[me]], sendBuf[sd[me]:sd[me]+sendCounts[me]])
	for step := 1; step < n; step++ {
		dst := (me + step) % n
		src := (me - step + n) % n
		r.collHop(p, max(sendCounts[dst], recvCounts[src]))
		if _, err := r.Sendrecv(p,
			sendBuf[sd[dst]:sd[dst]+sendCounts[dst]], c.Translate(dst), c.collTag(opAlltoall, step),
			recvBuf[rd[src]:rd[src]+recvCounts[src]], c.Translate(src), c.collTag(opAlltoall, step)); err != nil {
			return err
		}
	}
	return nil
}

// Alltoallv on the world communicator.
func (r *Rank) Alltoallv(p *sim.Proc, sendBuf []byte, sendCounts []int, recvBuf []byte, recvCounts []int) error {
	return r.w.Comm().Alltoallv(p, r, sendBuf, sendCounts, recvBuf, recvCounts)
}

// Reduce folds every member's sendBuf element-wise into recvBuf at the
// root member (binomial tree).
func (c *Comm) Reduce(p *sim.Proc, r *Rank, sendBuf, recvBuf []byte, dt Datatype, op Op, root int) error {
	n := c.Size()
	me := c.RankOf(r)
	p.SleepJit(r.w.cfg.CallOverhead)
	acc := r.stagingPool().Get(len(sendBuf))
	copy(acc, sendBuf)
	tmp := r.stagingPool().Get(len(sendBuf))
	defer r.stagingPool().Put(acc)
	defer r.stagingPool().Put(tmp)
	vr := (me - root + n) % n
	for mask, round := 1, 0; mask < n; mask, round = mask<<1, round+1 {
		if vr&mask != 0 {
			parent := c.Translate((vr - mask + root) % n)
			r.collHop(p, len(acc))
			return r.Send(p, acc, parent, c.collTag(opReduce, round))
		}
		child := vr + mask
		if child < n {
			r.collHop(p, len(tmp))
			if _, err := r.Recv(p, tmp, c.Translate((child+root)%n), c.collTag(opReduce, round)); err != nil {
				return err
			}
			reduceBytes(dt, op, acc, tmp)
		}
	}
	// Only the root reaches here.
	copy(recvBuf, acc)
	return nil
}

// Allreduce is Reduce to member 0 followed by Bcast from member 0.
func (c *Comm) Allreduce(p *sim.Proc, r *Rank, sendBuf, recvBuf []byte, dt Datatype, op Op) error {
	if err := c.Reduce(p, r, sendBuf, recvBuf, dt, op, 0); err != nil {
		return err
	}
	return c.Bcast(p, r, recvBuf, 0)
}

// displacements returns the prefix-sum offsets for packed variable-size
// buffers.
func displacements(counts []int) []int {
	d := make([]int, len(counts))
	off := 0
	for i, c := range counts {
		d[i] = off
		off += c
	}
	return d
}
