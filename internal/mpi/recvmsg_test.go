package mpi

import (
	"bytes"
	"testing"

	"dcgn/internal/sim"
)

// TestRecvMsgEager exercises the take-ownership receive on the eager path:
// the caller gets the pooled envelope buffer directly (no copy into a
// caller buffer) and returning it balances the pool.
func TestRecvMsgEager(t *testing.T) {
	s := sim.New()
	w := testWorld(s, 2, 2)
	msg := fill(100, 9)
	runRanks(t, w, func(p *sim.Proc, r *Rank) {
		switch r.ID() {
		case 0:
			if err := r.Send(p, msg, 1, 7); err != nil {
				t.Error(err)
			}
		case 1:
			st, data, err := r.RecvMsg(p, 0, 7)
			if err != nil {
				t.Error(err)
			}
			if st.Source != 0 || st.Tag != 7 || st.Count != 100 {
				t.Errorf("status = %+v", st)
			}
			if !bytes.Equal(data, msg) {
				t.Error("payload mismatch on eager RecvMsg")
			}
			r.World().Pool().Put(data)
		}
	})
	if out := w.Pool().Outstanding(); out != 0 {
		t.Errorf("pool outstanding = %d after balanced run, want 0", out)
	}
}

// TestRecvMsgRendezvous is the same through the rendezvous protocol (payload
// above the eager limit), including AnySource matching.
func TestRecvMsgRendezvous(t *testing.T) {
	s := sim.New()
	w := testWorld(s, 2, 2)
	msg := fill(w.cfg.EagerLimit*2, 5)
	runRanks(t, w, func(p *sim.Proc, r *Rank) {
		switch r.ID() {
		case 0:
			if err := r.Send(p, msg, 1, 3); err != nil {
				t.Error(err)
			}
		case 1:
			st, data, err := r.RecvMsg(p, AnySource, 3)
			if err != nil {
				t.Error(err)
			}
			if st.Source != 0 || st.Count != len(msg) {
				t.Errorf("status = %+v", st)
			}
			if !bytes.Equal(data, msg) {
				t.Error("payload mismatch on rendezvous RecvMsg")
			}
			r.World().Pool().Put(data)
		}
	})
	if out := w.Pool().Outstanding(); out != 0 {
		t.Errorf("pool outstanding = %d after balanced run, want 0", out)
	}
}

// TestRecvMsgUnexpected covers the unexpected-queue path: the message lands
// before the receive is posted, sits in the queue, and is still handed over
// without a copy.
func TestRecvMsgUnexpected(t *testing.T) {
	s := sim.New()
	w := testWorld(s, 2, 2)
	msg := fill(256, 11)
	runRanks(t, w, func(p *sim.Proc, r *Rank) {
		switch r.ID() {
		case 0:
			if err := r.Send(p, msg, 1, 1); err != nil {
				t.Error(err)
			}
		case 1:
			// Let the eager message arrive and queue as unexpected first.
			p.Sleep(w.cfg.CallOverhead * 1000)
			_, data, err := r.RecvMsg(p, 0, 1)
			if err != nil {
				t.Error(err)
			}
			if !bytes.Equal(data, msg) {
				t.Error("payload mismatch on unexpected-queue RecvMsg")
			}
			r.World().Pool().Put(data)
		}
	})
	if out := w.Pool().Outstanding(); out != 0 {
		t.Errorf("pool outstanding = %d after balanced run, want 0", out)
	}
}
