package dcgn_test

// Golden determinism harness: every virtual-time metric the simulator
// reports must be bit-identical across host-side refactors (buffer
// pooling, label laziness, matcher data structures...). The scenarios
// below cover the canonical config matrix — Table 1 barrier shapes, the
// Fig. 6 send pairings, Fig. 7 broadcasts, the §5.1 apps, the high-fanout
// matching stressor, a jittered run (pinning the RNG consumption
// pattern), and a collective-mix kernel exercising every CPUCtx
// operation including wildcard receives and truncation.
//
// Values are captured as exact int64s (durations in ns, counters, FNV-1a
// checksums of result payloads) in testdata/golden_virtual.json.
// Regenerate with:
//
//	go test -run TestGoldenDeterminism -update
//
// Any diff after a pure host-side optimization is a bug in the
// optimization, not an expected churn.

import (
	"encoding/json"
	"flag"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"dcgn/internal/apps"
	"dcgn/internal/core"
	"dcgn/internal/gas"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata/golden_virtual.json from the current code")

const goldenPath = "testdata/golden_virtual.json"

// goldenMetrics is scenario name -> metric name -> exact value.
type goldenMetrics map[string]map[string]int64

func checksum(data []byte) int64 {
	h := fnv.New64a()
	h.Write(data)
	return int64(h.Sum64())
}

func checksumUint16(v []uint16) int64 {
	buf := make([]byte, 2*len(v))
	for i, x := range v {
		buf[2*i] = byte(x)
		buf[2*i+1] = byte(x >> 8)
	}
	return checksum(buf)
}

func checksumInts(v []int) int64 {
	buf := make([]byte, 8*len(v))
	for i, x := range v {
		for b := 0; b < 8; b++ {
			buf[8*i+b] = byte(uint64(x) >> (8 * b))
		}
	}
	return checksum(buf)
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

func reportMetrics(rep core.Report) map[string]int64 {
	return map[string]int64{
		"elapsed-ns":    rep.Elapsed.Nanoseconds(),
		"net-packets":   int64(rep.NetPackets),
		"net-bytes":     rep.NetBytes,
		"bus-transfers": int64(rep.BusTransfers),
		"bus-ctl-ops":   int64(rep.BusCtlOps),
		"polls":         int64(rep.Polls),
		"poll-hits":     int64(rep.PollHits),
		"requests":      int64(rep.Requests),
		"peak-pending":  int64(rep.PeakPending),
	}
}

// collectiveMix drives every CPUCtx communication primitive in one job —
// collectives, blocking and nonblocking point-to-point, wildcard-source
// receives and a deliberate truncation — and returns per-rank payload
// checksums plus the full Report.
func collectiveMix() (map[string]int64, error) {
	const chunk = 96
	cfg := core.DefaultConfig()
	cfg.Nodes, cfg.CPUKernels, cfg.GPUs = 2, 3, 0
	cfg.SlotsPerGPU = 0
	n := cfg.Nodes * cfg.CPUKernels
	job := core.NewJob(cfg)

	sums := make([]uint64, n)
	var kernErr error
	fail := func(tag string, err error) {
		if err != nil && kernErr == nil {
			kernErr = fmt.Errorf("%s: %w", tag, err)
		}
	}
	job.SetCPUKernel(func(c *core.CPUCtx) {
		r := c.Rank()
		h := fnv.New64a()
		mix := func(tag string, data []byte) {
			fmt.Fprintf(h, "%s@%v:", tag, c.Now())
			h.Write(data)
		}
		fill := func(buf []byte, salt int) {
			for i := range buf {
				buf[i] = byte(r*31 + salt*7 + i)
			}
		}

		// Bcast: root 0 pushes a 2 kB pattern to everyone.
		bb := make([]byte, 2048)
		if r == 0 {
			fill(bb, 1)
		}
		fail("bcast", c.Bcast(0, bb))
		mix("bcast", bb)

		// Gather to root 2: every rank contributes one chunk.
		gsend := make([]byte, chunk)
		fill(gsend, 2)
		var grecv []byte
		if r == 2 {
			grecv = make([]byte, n*chunk)
		}
		fail("gather", c.Gather(2, gsend, grecv))
		mix("gather", grecv)

		// Scatter from root 1.
		var ssend []byte
		if r == 1 {
			ssend = make([]byte, n*chunk)
			fill(ssend, 3)
		}
		srecv := make([]byte, chunk)
		fail("scatter", c.Scatter(1, ssend, srecv))
		mix("scatter", srecv)

		// AllToAll with a distinct pattern per (src,dst) pair.
		asend := make([]byte, n*chunk)
		for d := 0; d < n; d++ {
			for i := 0; i < chunk; i++ {
				asend[d*chunk+i] = byte(r*13 + d*5 + i)
			}
		}
		arecv := make([]byte, n*chunk)
		fail("alltoall", c.AllToAll(asend, arecv))
		mix("alltoall", arecv)

		// SendRecv around the ring.
		next, prev := (r+1)%n, (r+n-1)%n
		srSend := make([]byte, 512)
		fill(srSend, 4)
		srRecv := make([]byte, 512)
		st, err := c.SendRecv(next, srSend, prev, srRecv)
		fail("sendrecv", err)
		mix("sendrecv", srRecv[:st.Bytes])

		// SendRecvReplace the other way.
		rep := make([]byte, 256)
		fill(rep, 5)
		if _, err := c.SendRecvReplace(prev, next, rep); err != nil {
			fail("replace", err)
		}
		mix("replace", rep)

		// Wildcard fan-in: everyone sends one message to rank 0, which
		// posts AnySource receives (arrival order is deterministic in the
		// simulator, so contents hash identically run to run).
		if r == 0 {
			got := make([]byte, 0, (n-1)*32)
			for i := 1; i < n; i++ {
				buf := make([]byte, 32)
				st, err := c.Recv(core.AnySource, buf)
				fail("anysource-recv", err)
				got = append(got, buf[:st.Bytes]...)
			}
			mix("anysource", got)
		} else {
			buf := make([]byte, 32)
			fill(buf, 6)
			fail("anysource-send", c.Send(0, buf))
		}
		c.Barrier()

		// Nonblocking ring: overlap an ISend and IRecv pair.
		ibuf := make([]byte, 1024)
		fill(ibuf, 7)
		irecv := make([]byte, 1024)
		sendOp := c.ISend(next, ibuf)
		recvOp := c.IRecv(prev, irecv)
		if _, err := sendOp.Wait(c); err != nil {
			fail("iring-send", err)
		}
		st, err = recvOp.Wait(c)
		fail("iring-recv", err)
		mix("iring", irecv[:st.Bytes])

		// Truncation: rank 4 sends 64 B at rank 5's 16 B buffer; the
		// receiver must see ErrTruncate with exactly 16 delivered bytes.
		if r == 4 {
			big := make([]byte, 64)
			fill(big, 8)
			// Truncation is receiver-side only: the send completes cleanly
			// whether the peer is local or remote.
			if err := c.Send(5, big); err != nil {
				fail("trunc-send", err)
			}
		} else if r == 5 {
			small := make([]byte, 16)
			st, err := c.Recv(4, small)
			if err != core.ErrTruncate {
				fail("trunc", fmt.Errorf("got err %v, want ErrTruncate", err))
			}
			if st.Bytes != 16 {
				fail("trunc", fmt.Errorf("got %d bytes, want 16", st.Bytes))
			}
			mix("trunc", small)
		}
		c.Barrier()
		sums[r] = h.Sum64()
	})
	rep, err := job.Run()
	if err == nil {
		err = kernErr
	}
	if err != nil {
		return nil, err
	}
	m := reportMetrics(rep)
	for r, s := range sums {
		m[fmt.Sprintf("rank%d-checksum", r)] = int64(s)
	}
	return m, nil
}

// goldenResults runs every scenario and collects exact metrics.
func goldenResults() (goldenMetrics, error) {
	out := goldenMetrics{}
	put := func(name string, m map[string]int64, err error) error {
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		out[name] = m
		return nil
	}

	// Table 1 barrier shapes (CPU-only, GPU-only, mixed, multi-node).
	for _, row := range []struct{ nodes, cpus, gpus int }{
		{1, 2, 0}, {1, 0, 2}, {2, 2, 2}, {4, 2, 2},
	} {
		name := fmt.Sprintf("barrier/%dn%dc%dg", row.nodes, row.cpus, row.gpus)
		d, err := apps.DCGNBarrier(core.DefaultConfig(), row.nodes, row.cpus, row.gpus)
		if err := put(name, map[string]int64{"barrier-ns": d.Nanoseconds()}, err); err != nil {
			return nil, err
		}
	}
	mb, err := apps.MPIBarrier(gas.DefaultConfig(), 4, 2)
	if err := put("mpi-barrier/4n2c", map[string]int64{"barrier-ns": mb.Nanoseconds()}, err); err != nil {
		return nil, err
	}

	// Fig. 6 one-way sends: all four endpoint pairings across the
	// eager/rendezvous split and a large DMA-bound size.
	pairings := []struct {
		name     string
		src, dst apps.Endpoint
	}{
		{"CPUtoCPU", apps.EPCPU, apps.EPCPU},
		{"CPUtoGPU", apps.EPCPU, apps.EPGPU},
		{"GPUtoCPU", apps.EPGPU, apps.EPCPU},
		{"GPUtoGPU", apps.EPGPU, apps.EPGPU},
	}
	for _, size := range []int{0, 4096, 1 << 20} {
		for _, pr := range pairings {
			name := fmt.Sprintf("send/%s/%dB", pr.name, size)
			d, err := apps.DCGNSendOneWay(core.DefaultConfig(), pr.src, pr.dst, size)
			if err := put(name, map[string]int64{"oneway-ns": d.Nanoseconds()}, err); err != nil {
				return nil, err
			}
		}
		d, err := apps.MPISendOneWay(gas.DefaultConfig(), size)
		if err := put(fmt.Sprintf("mpi-send/%dB", size), map[string]int64{"oneway-ns": d.Nanoseconds()}, err); err != nil {
			return nil, err
		}
	}

	// Jittered send: pins the timing-noise RNG consumption pattern — a
	// refactor that adds or removes a SleepJit call shifts every number.
	jcfg := core.DefaultConfig()
	jcfg.JitterFrac = 0.25
	jcfg.JitterSeed = 7
	jd, err := apps.DCGNSendOneWay(jcfg, apps.EPCPU, apps.EPGPU, 4096)
	if err := put("send-jittered/CPUtoGPU/4096B", map[string]int64{"oneway-ns": jd.Nanoseconds()}, err); err != nil {
		return nil, err
	}

	// Fig. 7 broadcasts at 64 kB.
	bcpu, err := apps.DCGNBroadcastCPU(core.DefaultConfig(), 64<<10)
	if err := put("bcast/dcgn-cpu/64kB", map[string]int64{"bcast-ns": bcpu.Nanoseconds()}, err); err != nil {
		return nil, err
	}
	bgpu, err := apps.DCGNBroadcastGPU(core.DefaultConfig(), 64<<10)
	if err := put("bcast/dcgn-gpu/64kB", map[string]int64{"bcast-ns": bgpu.Nanoseconds()}, err); err != nil {
		return nil, err
	}
	bmpi, err := apps.MPIBroadcast(gas.DefaultConfig(), 64<<10)
	if err := put("bcast/mpi/64kB", map[string]int64{"bcast-ns": bmpi.Nanoseconds()}, err); err != nil {
		return nil, err
	}

	// §5.1 apps at golden-test scale, with payload checksums so a
	// corrupted (not just retimed) result also fails.
	mc := apps.DefaultMandelConfig()
	mc.Width, mc.Height = 256, 128
	mres, err := apps.MandelbrotDCGN(dcgnCfg(4, 1, 2), mc)
	if err := put("app/mandelbrot", map[string]int64{
		"elapsed-ns":      mres.Elapsed.Nanoseconds(),
		"pixels":          int64(mres.Pixels),
		"image-fnv":       checksumUint16(mres.Image),
		"strip-owner-fnv": checksumInts(mres.StripOwner),
		"workers":         int64(mres.Workers),
	}, err); err != nil {
		return nil, err
	}

	cc := apps.DefaultCannonConfig()
	cc.N = 256
	cc.RealMath = true
	cres, err := apps.CannonDCGN(dcgnCfg(2, 0, 2), cc)
	if err := put("app/cannon", map[string]int64{
		"elapsed-ns": cres.Elapsed.Nanoseconds(),
		"targets":    int64(cres.Targets),
		"verified":   b2i(cres.Verified),
	}, err); err != nil {
		return nil, err
	}

	nc := apps.DefaultNBodyConfig()
	nc.Bodies, nc.Steps = 1024, 2
	nc.RealMath = true
	nres, err := apps.NBodyDCGN(dcgnCfg(4, 0, 2), nc)
	if err := put("app/nbody", map[string]int64{
		"elapsed-ns":  nres.Elapsed.Nanoseconds(),
		"steptime-ns": nres.StepTime.Nanoseconds(),
		"targets":     int64(nres.Targets),
		"verified":    b2i(nres.Verified),
	}, err); err != nil {
		return nil, err
	}

	mrres, err := apps.MapReduceDCGN(dcgnCfg(1, 1, 1), apps.DefaultMapReduceConfig(2))
	if err := put("app/mapreduce", map[string]int64{
		"elapsed-ns": mrres.Elapsed.Nanoseconds(),
		"sum":        mrres.Sum,
		"verified":   b2i(mrres.Verified),
	}, err); err != nil {
		return nil, err
	}

	pres, err := apps.PipelineDCGN(dcgnCfg(2, 1, 2), apps.DefaultPipelineConfig(false))
	if err := put("app/pipeline", map[string]int64{
		"elapsed-ns": pres.Elapsed.Nanoseconds(),
		"verified":   b2i(pres.Verified),
	}, err); err != nil {
		return nil, err
	}

	// High-fanout matching stressor: the full Report, since this is the
	// workload the allocation work targets hardest.
	hrep, err := apps.HighFanout(core.DefaultConfig(), 16, 512)
	if err := put("highfanout/16src-512inflight", reportMetrics(hrep), err); err != nil {
		return nil, err
	}

	// Collective mix with per-rank content checksums.
	cm, err := collectiveMix()
	if err := put("collective-mix", cm, err); err != nil {
		return nil, err
	}

	return out, nil
}

func TestGoldenDeterminism(t *testing.T) {
	got, err := goldenResults()
	if err != nil {
		t.Fatal(err)
	}

	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		data, err := json.MarshalIndent(got, "", "\t")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d scenarios)", goldenPath, len(got))
		return
	}

	data, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden file (run `go test -run TestGoldenDeterminism -update`): %v", err)
	}
	var want goldenMetrics
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}

	names := make([]string, 0, len(want))
	for name := range want {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		g, ok := got[name]
		if !ok {
			t.Errorf("%s: scenario missing from current run", name)
			continue
		}
		keys := make([]string, 0, len(want[name]))
		for k := range want[name] {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			if g[k] != want[name][k] {
				t.Errorf("%s: %s = %d, want %d (virtual-time metrics must be bit-identical)", name, k, g[k], want[name][k])
			}
		}
	}
	for name := range got {
		if _, ok := want[name]; !ok {
			t.Errorf("%s: scenario not in golden file (regenerate with -update)", name)
		}
	}
}
