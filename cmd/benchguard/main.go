// Command benchguard compares `go test -benchmem` output against a
// committed allocation baseline and fails if any guarded benchmark's
// allocs/op regressed beyond the tolerance. It is the CI tripwire for the
// per-message staging paths: an accidental copy or a dropped pool reuse
// shows up as an allocs/op jump long before it is a visible slowdown.
//
// Usage:
//
//	go test -run '^$' -bench 'MatchIndex|HighFanoutMatching' \
//	    -benchtime=1x -benchmem ./... | benchguard -baseline testdata/bench_baseline.json
//
// The baseline maps benchmark names (without the -GOMAXPROCS suffix) to
// allocs/op. Benchmarks in the output but not the baseline are ignored;
// baseline entries missing from the output fail the run, so the guard
// cannot rot silently when benchmarks are renamed.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

var (
	baselinePath = flag.String("baseline", "testdata/bench_baseline.json", "JSON file mapping benchmark name to allocs/op")
	tolerance    = flag.Float64("tolerance", 0.20, "allowed fractional regression over baseline")
	slack        = flag.Int64("slack", 16, "absolute allocs/op slack added to the tolerance band (absorbs runtime noise on tiny counts)")
)

// benchLine matches one -benchmem result row, e.g.
// "BenchmarkMatchIndex/inflight64-8   1   2292 ns/op   0 B/op   0 allocs/op".
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+.*?\s(\d+)\s+allocs/op`)

func main() {
	flag.Parse()

	raw, err := os.ReadFile(*baselinePath)
	if err != nil {
		fatalf("read baseline: %v", err)
	}
	baseline := map[string]int64{}
	if err := json.Unmarshal(raw, &baseline); err != nil {
		fatalf("parse baseline %s: %v", *baselinePath, err)
	}

	got := map[string]int64{}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		n, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			continue
		}
		got[m[1]] = n
	}
	if err := sc.Err(); err != nil {
		fatalf("read bench output: %v", err)
	}

	failed := false
	for name, base := range baseline {
		cur, ok := got[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "benchguard: %s missing from bench output (renamed or not run?)\n", name)
			failed = true
			continue
		}
		limit := base + int64(float64(base)**tolerance) + *slack
		status := "ok"
		if cur > limit {
			status = "REGRESSED"
			failed = true
		}
		fmt.Printf("benchguard: %-50s allocs/op %8d (baseline %8d, limit %8d) %s\n",
			name, cur, base, limit, status)
	}
	if failed {
		os.Exit(1)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchguard: "+format+"\n", args...)
	os.Exit(1)
}
