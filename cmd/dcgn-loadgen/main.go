// Command dcgn-loadgen offers seeded traffic against a multi-tenant
// Runtime and reports SLO tail latencies from the engine's obs
// histograms.
//
// Examples:
//
//	dcgn-loadgen -preset mixed -rate 500 -duration 5s -backend sim
//	dcgn-loadgen -preset chat -arrival bursty -backend live -o SLO.json
//	dcgn-loadgen -arrival closed -concurrency 32 -duration 2s
//	dcgn-loadgen -record trace.json -rate 200 -duration 1s
//	dcgn-loadgen -replay trace.json -backend live
//	dcgn-loadgen -find-max-rate -slo 2ms -preset chat -nodes 8
//
// The simulated backend replays the offered trace in virtual time, so a
// fixed seed reproduces the SLO report byte for byte; the live backend
// paces the same trace on the wall clock.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"dcgn/internal/loadgen"
	"dcgn/internal/obs/flow"
)

var (
	backendFlag = flag.String("backend", "sim", "transport backend: sim or live")
	seedFlag    = flag.Int64("seed", 1, "seed for every sampled quantity")
	rateFlag    = flag.Float64("rate", loadgen.DefaultRate, "mean open-loop arrival rate (jobs/sec)")
	durFlag     = flag.Duration("duration", loadgen.DefaultDuration, "offered-traffic window")
	arrivalFlag = flag.String("arrival", "poisson", "arrival process: poisson, bursty, diurnal or closed")
	concFlag    = flag.Int("concurrency", loadgen.DefaultConcurrency, "closed-loop worker count")
	presetFlag  = flag.String("preset", "mixed", "job-class mix: chat, batch or mixed")
	nodesFlag   = flag.Int("nodes", loadgen.DefaultNodes, "shared cluster size")
	queueFlag   = flag.Int("maxqueue", 0, "admission queue bound (0 = runtime default)")
	outFlag     = flag.String("o", "", "report output path (default stdout)")
	recordFlag  = flag.String("record", "", "write the offered trace to this path, then run it")
	replayFlag  = flag.String("replay", "", "replay a recorded trace instead of generating arrivals")
	findFlag    = flag.Bool("find-max-rate", false, "binary-search the max rate meeting the p99 SLO")
	sloFlag     = flag.Duration("slo", 2*time.Millisecond, "p99 end-to-end SLO target for -find-max-rate")
	flowsFlag   = flag.Bool("flows", false, "trace causal flows in every job and report per-phase latency attribution")
)

// kneePhase names the pipeline phase whose mean per-job latency grew
// most between the max-sustainable probe and the knee probe — the stage
// the extra load piled up in. Empty without -flows phase attribution.
// Iteration follows the canonical phase order, so ties are
// deterministic.
func kneePhase(res *loadgen.SearchResult) (string, float64) {
	if res.PhasesAtMaxNs == nil || res.PhasesAtKneeNs == nil {
		return "", 0
	}
	best, growth := "", 0.0
	for _, p := range flow.Phases {
		if g := res.PhasesAtKneeNs[p] - res.PhasesAtMaxNs[p]; g > growth {
			best, growth = p, g
		}
	}
	return best, growth
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "dcgn-loadgen:", err)
		os.Exit(1)
	}
}

// emit writes the JSON document to -o (stdout when unset).
func emit(doc []byte) {
	if *outFlag == "" {
		_, err := os.Stdout.Write(doc)
		check(err)
		return
	}
	check(os.WriteFile(*outFlag, doc, 0o644))
	fmt.Fprintf(os.Stderr, "dcgn-loadgen: wrote %s\n", *outFlag)
}

func main() {
	flag.Parse()
	spec := loadgen.Spec{
		Backend:     *backendFlag,
		Seed:        *seedFlag,
		Rate:        *rateFlag,
		Duration:    *durFlag,
		Arrival:     *arrivalFlag,
		Concurrency: *concFlag,
		Preset:      *presetFlag,
		Nodes:       *nodesFlag,
		MaxQueue:    *queueFlag,
		Flows:       *flowsFlag,
	}

	switch {
	case *replayFlag != "":
		tr, err := loadgen.LoadTrace(*replayFlag)
		check(err)
		rep, err := loadgen.RunTrace(tr, *backendFlag)
		check(err)
		doc, err := rep.JSON()
		check(err)
		emit(doc)
	case *findFlag:
		res, err := loadgen.FindMaxRate(spec, *sloFlag)
		check(err)
		doc, err := res.JSON()
		check(err)
		emit(doc)
		fmt.Fprintf(os.Stderr, "dcgn-loadgen: max sustainable rate %.1f jobs/s (p99 %.2fms ≤ SLO %v); knee at %.1f jobs/s (p99 %.2fms)\n",
			res.MaxRatePerSec, res.P99AtMaxNs/1e6, *sloFlag, res.KneeRatePerSec, res.P99AtKneeNs/1e6)
		if phase, growth := kneePhase(res); phase != "" {
			fmt.Fprintf(os.Stderr, "dcgn-loadgen: knee driven by %q (+%.2fms mean per job from max to knee)\n", phase, growth/1e6)
		}
	default:
		if *recordFlag != "" {
			tr, err := loadgen.RecordTrace(spec)
			check(err)
			check(tr.WriteFile(*recordFlag))
			fmt.Fprintf(os.Stderr, "dcgn-loadgen: recorded %d arrivals to %s\n", len(tr.Arrivals), *recordFlag)
			rep, err := loadgen.RunTrace(tr, "")
			check(err)
			doc, err := rep.JSON()
			check(err)
			emit(doc)
			return
		}
		rep, err := loadgen.Run(spec)
		check(err)
		doc, err := rep.JSON()
		check(err)
		emit(doc)
	}
}
