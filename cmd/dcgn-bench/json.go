package main

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"

	"dcgn/internal/apps"
	"dcgn/internal/core"
)

// profileEntry is one workload's combined profile: simulated results
// (virtual nanoseconds and custom metrics) plus the host-side cost of
// producing them (wall ns/op, allocs/op, B/op from testing.Benchmark).
// The split matters: the virtual columns are the paper reproduction and
// must never move with host optimizations; the wall columns are what the
// bufpool / zero-copy work is allowed to improve.
type profileEntry struct {
	Name        string             `json:"name"`
	WallNsPerOp int64              `json:"wall_ns_per_op"`
	AllocsPerOp int64              `json:"allocs_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op"`
	VirtualNs   int64              `json:"virtual_ns"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// writeProfileJSON runs the allocation-profile workloads (the high-fanout
// matching stress, the §5.1 apps at golden-test sizes, and the sharded
// scale workload at both ends of the shard axis) and writes the combined
// profile to path. `make bench-json` materializes BENCH_6.json from this.
func writeProfileJSON(path string) {
	var entries []profileEntry

	for _, inflight := range []int{64, 512, 4096} {
		inflight := inflight
		var rep core.Report
		res := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				var err error
				rep, err = apps.HighFanout(core.DefaultConfig(), 16, inflight)
				if err != nil {
					b.Fatal(err)
				}
			}
		})
		entries = append(entries, profileEntry{
			Name:        fmt.Sprintf("highfanout/inflight%d", inflight),
			WallNsPerOp: res.NsPerOp(),
			AllocsPerOp: res.AllocsPerOp(),
			BytesPerOp:  res.AllocedBytesPerOp(),
			VirtualNs:   rep.Elapsed.Nanoseconds(),
			Metrics: map[string]float64{
				"peak-pending":  float64(rep.PeakPending),
				"pool-acquires": float64(rep.PoolAcquires),
				"pool-hits":     float64(rep.PoolHits),
			},
		})
	}

	{
		mc := apps.DefaultMandelConfig()
		mc.Width, mc.Height = 256, 128
		var rep apps.MandelResult
		res := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				var err error
				rep, err = apps.MandelbrotDCGN(dcgnCfg(4, 1, 2), mc)
				if err != nil {
					b.Fatal(err)
				}
			}
		})
		entries = append(entries, profileEntry{
			Name:        "table3/mandelbrot",
			WallNsPerOp: res.NsPerOp(),
			AllocsPerOp: res.AllocsPerOp(),
			BytesPerOp:  res.AllocedBytesPerOp(),
			VirtualNs:   rep.Elapsed.Nanoseconds(),
			Metrics:     map[string]float64{"Mpixels-per-sec": rep.PixelsPerSec / 1e6},
		})
	}

	{
		cc := apps.DefaultCannonConfig()
		cc.N = 256
		cc.RealMath = true
		var rep apps.CannonResult
		res := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				var err error
				rep, err = apps.CannonDCGN(dcgnCfg(2, 0, 2), cc)
				if err != nil {
					b.Fatal(err)
				}
			}
		})
		entries = append(entries, profileEntry{
			Name:        "table3/cannon",
			WallNsPerOp: res.NsPerOp(),
			AllocsPerOp: res.AllocsPerOp(),
			BytesPerOp:  res.AllocedBytesPerOp(),
			VirtualNs:   rep.Elapsed.Nanoseconds(),
			Metrics:     map[string]float64{"GFLOPS": rep.GFLOPS},
		})
	}

	{
		nc := apps.DefaultNBodyConfig()
		nc.Bodies = 1024
		nc.Steps = 2
		nc.RealMath = true
		var rep apps.NBodyResult
		res := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				var err error
				rep, err = apps.NBodyDCGN(dcgnCfg(4, 0, 2), nc)
				if err != nil {
					b.Fatal(err)
				}
			}
		})
		entries = append(entries, profileEntry{
			Name:        "table3/nbody",
			WallNsPerOp: res.NsPerOp(),
			AllocsPerOp: res.AllocsPerOp(),
			BytesPerOp:  res.AllocedBytesPerOp(),
			VirtualNs:   rep.Elapsed.Nanoseconds(),
		})
	}

	for _, shards := range []int{1, 8} {
		shards := shards
		cfg := core.DefaultConfig()
		cfg.Nodes = 256
		cfg.Shards = shards
		cfg.MPI.TreeCollectives = true
		var rep core.Report
		res := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				var err error
				rep, _, err = apps.ScaleFanout(cfg, 2, 3)
				if err != nil {
					b.Fatal(err)
				}
			}
		})
		entries = append(entries, profileEntry{
			Name:        fmt.Sprintf("scale/nodes256-shards%d", shards),
			WallNsPerOp: res.NsPerOp(),
			AllocsPerOp: res.AllocsPerOp(),
			BytesPerOp:  res.AllocedBytesPerOp(),
			VirtualNs:   rep.Elapsed.Nanoseconds(),
			Metrics:     map[string]float64{"net-packets": float64(rep.NetPackets)},
		})
	}

	out, err := json.MarshalIndent(entries, "", "\t")
	check(err)
	out = append(out, '\n')
	check(os.WriteFile(path, out, 0o644))
	fmt.Printf("wrote %d workload profiles to %s\n", len(entries), path)
}
