package main

// Loadgen mode (-loadgen OUT.json): a short seeded mixed-preset traffic
// run through internal/loadgen on the bench's -backend flag, so the SLO
// report rides the same CLI the other evidence modes use. The full knob
// set (arrival processes, presets, trace record/replay, knee search)
// lives in cmd/dcgn-loadgen; this is its bench-report sibling.

import (
	"flag"
	"fmt"
	"os"
	"time"

	"dcgn/internal/loadgen"
)

var (
	loadgenOut = flag.String("loadgen", "",
		"loadgen mode: write a short seeded mixed-preset SLO report as JSON to this file and exit")
	loadgenRate = flag.Float64("loadgen-rate", 300,
		"loadgen mode: mean Poisson arrival rate (jobs/sec)")
	loadgenDur = flag.Duration("loadgen-duration", time.Second,
		"loadgen mode: offered-traffic window")
	loadgenSeed = flag.Int64("loadgen-seed", 1,
		"loadgen mode: workload seed")
)

// runLoadgenBench drives the canned loadgen run and writes its report.
func runLoadgenBench() {
	rep, err := loadgen.Run(loadgen.Spec{
		Backend:  *backend,
		Seed:     *loadgenSeed,
		Rate:     *loadgenRate,
		Duration: *loadgenDur,
		Preset:   "mixed",
	})
	check(err)
	doc, err := rep.JSON()
	check(err)
	check(os.WriteFile(*loadgenOut, doc, 0o644))
	fmt.Printf("loadgen: %s backend, %d offered / %d completed / %d shed; e2e p50 %.2fms p99 %.2fms p999 %.2fms\n",
		rep.Backend, rep.Offered, rep.Completed, rep.Rejected,
		rep.Aggregate.E2E.P50Ns/1e6, rep.Aggregate.E2E.P99Ns/1e6, rep.Aggregate.E2E.P999Ns/1e6)
	fmt.Printf("wrote loadgen SLO report to %s\n", *loadgenOut)
}
