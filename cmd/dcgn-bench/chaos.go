package main

// `dcgn-bench -chaos` runs the wire-hardening differential harness
// (internal/chaos) standalone: a seeded randomized workload on a faulted
// wire whose per-rank digests must match a clean run's, with the fault
// and retransmit accounting printed. The same harness backs the chaos
// tests in internal/core/chaos_test.go; this mode is for exploring other
// seeds, rates and shapes from the command line.

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"dcgn/internal/chaos"
	"dcgn/internal/metrics"
	"dcgn/internal/obs"
	"dcgn/internal/transport"
	"dcgn/internal/transport/faults"
)

var (
	chaosSeed    = flag.Int64("chaos-seed", 1, "chaos script seed")
	chaosRounds  = flag.Int("chaos-rounds", 24, "chaos script rounds per rank")
	chaosNodes   = flag.Int("chaos-nodes", 3, "chaos cluster nodes")
	chaosCPUs    = flag.Int("chaos-cpus", 2, "chaos CPU kernels per node")
	chaosDrop    = flag.Float64("chaos-drop", 0.12, "wire drop probability")
	chaosDup     = flag.Float64("chaos-dup", 0.08, "wire duplication probability")
	chaosReorder = flag.Float64("chaos-reorder", 0.08, "wire reordering probability")
	chaosDelay   = flag.Float64("chaos-delay", 0, "wire delay probability")
	chaosColl    = flag.Float64("chaos-collfail", 0, "transient collective-failure probability")
	chaosTrace   = flag.String("chaos-trace", "", "write a Perfetto (Chrome trace-event) JSON dump of the faulted run to this file")
)

// runChaos executes the clean reference and the faulted run, compares
// digests and prints the accounting. Exits nonzero on divergence.
func runChaos() {
	f := faults.Config{
		Seed:     *chaosSeed,
		Drop:     *chaosDrop,
		Dup:      *chaosDup,
		Reorder:  *chaosReorder,
		Delay:    *chaosDelay,
		CollFail: *chaosColl,
	}
	opts := chaos.Options{
		Backend:    *backend,
		Nodes:      *chaosNodes,
		CPUs:       *chaosCPUs,
		Rounds:     *chaosRounds,
		Seed:       *chaosSeed,
		AckTimeout: 5 * time.Millisecond,
		Trace:      *chaosTrace != "",
	}
	fmt.Printf("== Chaos differential: %d nodes x %d CPUs, %d rounds, seed %d, backend=%s ==\n",
		opts.Nodes, opts.CPUs, opts.Rounds, opts.Seed, *backend)

	cleanOpts := opts
	cleanOpts.Backend = transport.BackendSim
	clean, err := chaos.Run(cleanOpts)
	if err != nil {
		log.Fatalf("clean reference run: %v", err)
	}
	opts.Faults = f
	got, err := chaos.Run(opts)
	if err != nil {
		log.Fatalf("faulted run: %v", err)
	}
	if *chaosTrace != "" {
		out, err := os.Create(*chaosTrace)
		if err != nil {
			log.Fatalf("chaos trace: %v", err)
		}
		if err := obs.WriteChromeTrace(out, got.Report.Trace); err != nil {
			log.Fatalf("chaos trace: %v", err)
		}
		if err := out.Close(); err != nil {
			log.Fatalf("chaos trace: %v", err)
		}
		fmt.Printf("wrote %d lifecycle spans to %s (load at ui.perfetto.dev)\n",
			len(got.Report.Trace), *chaosTrace)
	}
	verdict := "MATCH"
	for i := range clean.Digests {
		if got.Digests[i] != clean.Digests[i] {
			verdict = "DIVERGED"
		}
	}
	fi := got.Report.FaultsInjected
	metrics.WriteAligned(os.Stdout,
		[]string{"Digests", "Drops", "Dups", "Reorders", "Delays", "CollFails",
			"Retransmits", "DupFrames", "Acks", "CollRetries"},
		[][]string{{
			verdict,
			fmt.Sprintf("%d", fi.Drops),
			fmt.Sprintf("%d", fi.Dups),
			fmt.Sprintf("%d", fi.Reorders),
			fmt.Sprintf("%d", fi.Delays),
			fmt.Sprintf("%d", fi.CollFails),
			fmt.Sprintf("%d", got.Report.Retransmits),
			fmt.Sprintf("%d", got.Report.DupWireFrames),
			fmt.Sprintf("%d", got.Report.AcksReceived),
			fmt.Sprintf("%d", got.Report.CollRetries),
		}})
	if got.Report.PoolAcquires != got.Report.PoolReleases {
		log.Fatalf("pool leak: %d acquires vs %d releases",
			got.Report.PoolAcquires, got.Report.PoolReleases)
	}
	if verdict != "MATCH" {
		log.Fatalf("digests diverged from clean run:\nclean: %x\ngot:   %x",
			clean.Digests, got.Digests)
	}
}
