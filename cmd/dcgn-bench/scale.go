package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"dcgn/internal/apps"
	"dcgn/internal/core"
	"dcgn/internal/fabric"
	"dcgn/internal/metrics"
)

// Scale mode exercises the sharded discrete-event core: -nodes selects the
// cluster size (and enters scale mode), -shards the per-node-group event
// loop count, -topology the fabric shape. -scale-verify runs the seeded
// determinism scenario at several shard counts and fails unless every run
// produces bit-identical per-rank digests and virtual elapsed time.
var (
	nodesFlag   = flag.Int("nodes", 0, "scale mode: simulate this many nodes (0 = classic experiments)")
	shardsFlag  = flag.Int("shards", 8, "scale mode: number of parallel event-loop shards")
	topoFlag    = flag.String("topology", "flat", "scale mode: fabric topology: flat|fattree|dragonfly")
	roundsFlag  = flag.Int("rounds", 4, "scale mode: neighbor-exchange rounds per rank")
	fanoutFlag  = flag.Int("fanout", 4, "scale mode: power-of-two neighbor offsets per rank per round")
	scaleVerify = flag.String("scale-verify", "", "comma-separated shard counts (e.g. \"1,2,8\"): run the seeded scenario at each and require identical results")
	minSpeedup  = flag.Float64("min-speedup", 0, "scale mode: fail unless the sharded run beats -shards 1 by at least this factor (0 disables)")
)

// scaleTopology builds the requested fabric for at least n hosts. The
// fat-tree picks the smallest even k with k^3/4 >= n; the dragonfly sweeps
// the balanced a=h, p=a/2 family.
func scaleTopology(name string, n int) fabric.Topology {
	const hop = 300 * time.Nanosecond
	switch name {
	case "flat":
		return nil // fabric uses the configured flat link latency
	case "fattree":
		for k := 4; ; k += 2 {
			if k*k*k/4 >= n {
				return fabric.NewFatTree(k, hop)
			}
		}
	case "dragonfly":
		for a := 2; ; a += 2 {
			p := max(1, a/2)
			if (a*a+1)*a*p >= n {
				return fabric.NewDragonfly(a, p, a, hop)
			}
		}
	default:
		log.Fatalf("unknown topology %q (want flat|fattree|dragonfly)", name)
		return nil
	}
}

// scaleCfg assembles the scale-mode job configuration for one shard count.
func scaleCfg(nodes, shards int) core.Config {
	cfg := core.DefaultConfig()
	cfg.Nodes = nodes
	cfg.Shards = shards
	cfg.Net.Topology = scaleTopology(*topoFlag, nodes)
	cfg.MPI.TreeCollectives = true
	return cfg
}

// runScaleBench times the scale workload at -shards 1 and -shards N on the
// wall clock and reports the parallel speedup. The virtual results must be
// identical — that is asserted, not just printed.
func runScaleBench() {
	nodes, shards := *nodesFlag, *shardsFlag
	if shards < 1 {
		log.Fatalf("-shards must be >= 1, got %d", shards)
	}
	fmt.Printf("== Scale: %d nodes, %s fabric, %d rounds x fanout %d ==\n",
		nodes, *topoFlag, *roundsFlag, *fanoutFlag)

	run := func(sh int) (core.Report, []uint64, time.Duration) {
		start := time.Now()
		rep, digests, err := apps.ScaleFanout(scaleCfg(nodes, sh), *roundsFlag, *fanoutFlag)
		check(err)
		return rep, digests, time.Since(start)
	}
	rep1, dig1, wall1 := run(1)
	repN, digN, wallN := run(shards)

	if rep1.Elapsed != repN.Elapsed {
		log.Fatalf("shard-determinism violation: virtual elapsed %v at -shards 1 vs %v at -shards %d",
			rep1.Elapsed, repN.Elapsed, shards)
	}
	for i := range dig1 {
		if dig1[i] != digN[i] {
			log.Fatalf("shard-determinism violation: rank %d digest %#x at -shards 1 vs %#x at -shards %d",
				i, dig1[i], digN[i], shards)
		}
	}

	speedup := float64(wall1) / float64(wallN)
	metrics.WriteAligned(os.Stdout,
		[]string{"Shards", "Virtual", "Wall", "Packets", "Speedup"},
		[][]string{
			{"1", metrics.FormatDuration(rep1.Elapsed), wall1.Round(time.Millisecond).String(),
				fmt.Sprintf("%d", rep1.NetPackets), "1.00x"},
			{fmt.Sprintf("%d", shards), metrics.FormatDuration(repN.Elapsed), wallN.Round(time.Millisecond).String(),
				fmt.Sprintf("%d", repN.NetPackets), fmt.Sprintf("%.2fx", speedup)},
		})
	if *minSpeedup > 0 && speedup < *minSpeedup {
		log.Fatalf("speedup %.2fx below required %.2fx", speedup, *minSpeedup)
	}
}

// runScaleVerify is the CI shard-determinism gate: the seeded scenario runs
// once per requested shard count and every run must produce bit-identical
// per-rank digests and virtual elapsed time.
func runScaleVerify() {
	nodes := *nodesFlag
	if nodes == 0 {
		nodes = 256
	}
	var counts []int
	for _, f := range strings.Split(*scaleVerify, ",") {
		c, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || c < 1 {
			log.Fatalf("bad -scale-verify entry %q", f)
		}
		counts = append(counts, c)
	}
	if len(counts) < 2 {
		log.Fatalf("-scale-verify needs at least two shard counts, got %q", *scaleVerify)
	}
	fmt.Printf("== Shard determinism: %d nodes, %s fabric, shard counts %v ==\n", nodes, *topoFlag, counts)

	var ref []uint64
	var refElapsed time.Duration
	for i, sh := range counts {
		rep, digests, err := apps.ScaleFanout(scaleCfg(nodes, sh), *roundsFlag, *fanoutFlag)
		check(err)
		sum := uint64(14695981039346656037)
		for _, d := range digests {
			sum = (sum ^ d) * 1099511628211
		}
		fmt.Printf("shards=%-3d elapsed=%-14v digest=%016x\n", sh, rep.Elapsed, sum)
		if i == 0 {
			ref, refElapsed = digests, rep.Elapsed
			continue
		}
		if rep.Elapsed != refElapsed {
			log.Fatalf("shards=%d: elapsed %v differs from shards=%d's %v", sh, rep.Elapsed, counts[0], refElapsed)
		}
		for r := range ref {
			if digests[r] != ref[r] {
				log.Fatalf("shards=%d: rank %d digest %#x differs from shards=%d's %#x",
					sh, r, digests[r], counts[0], ref[r])
			}
		}
	}
	fmt.Println("all shard counts bit-identical")
}
