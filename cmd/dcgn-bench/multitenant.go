package main

// Multi-tenant runtime report (-jobs N -tenants "a:1,b:3"): measures the
// per-job cost of sharing one Runtime against the exclusive single-job
// path, and the weighted fair-share admission split on a saturated
// runtime. `make multitenant` materializes BENCH_8.json from this.
//
// Two phases, both ping-pong jobs (64 round trips of 1 KiB):
//
//  1. Overhead — N jobs submitted to a runtime with room for all of
//     them; every job runs concurrently, and its Elapsed is compared to
//     the same job run exclusively through Job.Run. The delta is the
//     multi-tenancy tax the benchguard rows pin.
//  2. Fairness — N jobs per tenant on a single-slot runtime, so every
//     admission is a scheduling decision. The early-admission share per
//     tenant is reported against its weight share.

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"dcgn/internal/core"
	"dcgn/internal/transport"
)

var (
	jobsFlag = flag.Int("jobs", 0,
		"multi-tenant mode: concurrent jobs for the overhead run and jobs per tenant for the fairness run")
	tenantsFlag = flag.String("tenants", "a:1,b:1",
		"multi-tenant mode: comma-separated tenant:weight pairs")
	mtOut = flag.String("multitenant-out", "BENCH_8.json",
		"multi-tenant mode: output JSON path")
)

type mtTenant struct {
	name   string
	weight int
}

// parseTenants parses "light:1,heavy:3" into named weights.
func parseTenants(spec string) ([]mtTenant, error) {
	var out []mtTenant
	for _, part := range strings.Split(spec, ",") {
		name, ws, ok := strings.Cut(strings.TrimSpace(part), ":")
		if !ok || name == "" {
			return nil, fmt.Errorf("tenant spec %q: want name:weight", part)
		}
		w, err := strconv.Atoi(ws)
		if err != nil || w <= 0 {
			return nil, fmt.Errorf("tenant spec %q: weight must be a positive integer", part)
		}
		out = append(out, mtTenant{name: name, weight: w})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("tenant spec %q: no tenants", spec)
	}
	return out, nil
}

// mtPingPong builds the 2-node ping-pong job both phases submit.
func mtPingPong(backend string, iters, payload int) *core.Job {
	cfg := core.DefaultConfig()
	cfg.Nodes, cfg.CPUKernels, cfg.GPUs = 2, 1, 0
	cfg.Transport.Backend = backend
	job := core.NewJob(cfg)
	job.SetCPUKernel(func(c *core.CPUCtx) {
		buf := make([]byte, payload)
		for i := 0; i < iters; i++ {
			switch c.Rank() {
			case 0:
				check(c.Send(1, buf))
				_, err := c.Recv(1, buf)
				check(err)
			case 1:
				_, err := c.Recv(0, buf)
				check(err)
				check(c.Send(0, buf))
			}
		}
	})
	return job
}

type mtTenantJSON struct {
	Name            string  `json:"name"`
	Weight          int     `json:"weight"`
	Jobs            int     `json:"jobs"`
	EarlyAdmissions int     `json:"early_admissions"`
	Share           float64 `json:"share"`
	ExpectedShare   float64 `json:"expected_share"`
}

type mtReportJSON struct {
	Backend           string         `json:"backend"`
	Jobs              int            `json:"jobs"`
	SoloElapsedNs     int64          `json:"solo_elapsed_ns"`
	SoloWallNs        int64          `json:"solo_wall_ns"`
	PerJobElapsedNs   int64          `json:"perjob_elapsed_ns"`
	PerJobOverheadPct float64        `json:"perjob_overhead_pct"`
	BatchWallNs       int64          `json:"batch_wall_ns"`
	WallNsPerJob      int64          `json:"wall_ns_per_job"`
	Fairness          []mtTenantJSON `json:"fairness"`
}

// runMultiTenant drives both phases and writes the JSON report.
func runMultiTenant() {
	tenants, err := parseTenants(*tenantsFlag)
	check(err)
	be := *backend
	n := *jobsFlag
	const iters, payload = 64, 1024

	// Exclusive baseline: the same job through the single-job path.
	soloStart := time.Now()
	soloRep, err := mtPingPong(be, iters, payload).Run()
	check(err)
	soloWall := time.Since(soloStart)

	// Phase 1: overhead with every job concurrent.
	r, err := core.NewRuntime(core.RuntimeConfig{
		Nodes:     2 * n,
		Transport: transport.Config{Backend: be},
	})
	check(err)
	var handles []*core.JobHandle
	batchStart := time.Now()
	for j := 0; j < n; j++ {
		t := tenants[j%len(tenants)]
		h, err := r.Submit(mtPingPong(be, iters, payload),
			core.SubmitOpts{Tenant: t.name, Weight: t.weight})
		check(err)
		handles = append(handles, h)
	}
	if be == transport.BackendSim {
		check(r.Run())
	}
	var sumElapsed time.Duration
	for _, h := range handles {
		rep, err := h.Wait()
		check(err)
		sumElapsed += rep.Elapsed
	}
	batchWall := time.Since(batchStart)
	check(r.Close())
	perJob := sumElapsed / time.Duration(n)
	// Sim jobs overlap in virtual time, so per-job Elapsed vs solo Elapsed
	// is the clean multi-tenancy tax. Live jobs share real cores, which
	// inflates each job's wall Elapsed with ordinary CPU contention; there
	// the honest per-job figure is batch throughput (wall per job) against
	// the solo wall time.
	var overheadPct float64
	if be == transport.BackendSim {
		overheadPct = 100 * (float64(perJob)/float64(soloRep.Elapsed) - 1)
	} else {
		overheadPct = 100 * (float64(batchWall)/float64(n)/float64(soloWall) - 1)
	}

	// Phase 2: fairness on a single-slot runtime, n jobs per tenant.
	fr, err := core.NewRuntime(core.RuntimeConfig{
		Nodes:     2,
		Transport: transport.Config{Backend: be},
		MaxQueue:  n*len(tenants) + 1,
	})
	check(err)
	var fh []*core.JobHandle
	for j := 0; j < n; j++ {
		for _, t := range tenants {
			h, err := fr.Submit(mtPingPong(be, iters, payload),
				core.SubmitOpts{Tenant: t.name, Weight: t.weight})
			check(err)
			fh = append(fh, h)
		}
	}
	if be == transport.BackendSim {
		check(fr.Run())
	}
	statuses := make([]core.JobStatus, 0, len(fh))
	for _, h := range fh {
		_, err := h.Wait()
		check(err)
		statuses = append(statuses, h.Status())
	}
	check(fr.Close())
	sort.Slice(statuses, func(i, j int) bool {
		if statuses[i].StartedAt != statuses[j].StartedAt {
			return statuses[i].StartedAt < statuses[j].StartedAt
		}
		return statuses[i].ID < statuses[j].ID
	})
	// The early window is where contention lives: once a tenant's queue
	// empties the remaining admissions are forced and say nothing about
	// the scheduler.
	window := len(statuses) / 2
	early := make(map[string]int)
	for _, st := range statuses[:window] {
		early[st.Tenant]++
	}
	var sumW int
	for _, t := range tenants {
		sumW += t.weight
	}
	var fairness []mtTenantJSON
	for _, t := range tenants {
		fairness = append(fairness, mtTenantJSON{
			Name:            t.name,
			Weight:          t.weight,
			Jobs:            n,
			EarlyAdmissions: early[t.name],
			Share:           float64(early[t.name]) / float64(window),
			ExpectedShare:   float64(t.weight) / float64(sumW),
		})
	}

	report := mtReportJSON{
		Backend:           be,
		Jobs:              n,
		SoloElapsedNs:     soloRep.Elapsed.Nanoseconds(),
		SoloWallNs:        soloWall.Nanoseconds(),
		PerJobElapsedNs:   perJob.Nanoseconds(),
		PerJobOverheadPct: overheadPct,
		BatchWallNs:       batchWall.Nanoseconds(),
		WallNsPerJob:      batchWall.Nanoseconds() / int64(n),
		Fairness:          fairness,
	}
	out, err := json.MarshalIndent(report, "", "\t")
	check(err)
	out = append(out, '\n')
	check(os.WriteFile(*mtOut, out, 0o644))
	fmt.Printf("multi-tenant: %d jobs, per-job elapsed %v vs solo %v (%+.1f%%)\n",
		n, perJob, soloRep.Elapsed, overheadPct)
	for _, f := range fairness {
		fmt.Printf("  tenant %-8s weight %d: %2d/%d early admissions (share %.2f, expected %.2f)\n",
			f.Name, f.Weight, f.EarlyAdmissions, window, f.Share, f.ExpectedShare)
	}
	fmt.Printf("wrote multi-tenant report to %s\n", *mtOut)
}
