// Command dcgn-bench regenerates every table and figure of the paper's
// evaluation (§5) as text: Table 1 (barrier timings), Fig. 6 (send times),
// Fig. 7 (broadcast times) and the §5.1 application results (Mandelbrot,
// Cannon's matrix multiplication, N-body). Absolute numbers come from the
// calibrated simulation; EXPERIMENTS.md records them against the paper's.
//
// Usage:
//
//	dcgn-bench                 # run everything
//	dcgn-bench -exp table1     # one experiment: table1|fig6|fig7|mandelbrot|cannon|nbody|pingpong
//	dcgn-bench -backend live -exp pingpong  # ping-pong on the live goroutine backend
//	dcgn-bench -json BENCH_6.json  # allocation/throughput profile (see json.go)
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"dcgn/internal/apps"
	"dcgn/internal/core"
	"dcgn/internal/gas"
	"dcgn/internal/metrics"
	"dcgn/internal/transport"
)

var (
	exp       = flag.String("exp", "all", "experiment to run: all|table1|fig6|fig7|mandelbrot|cannon|nbody|pingpong")
	backend   = flag.String("backend", transport.BackendSim, "progress-engine backend: sim|live (only pingpong supports live)")
	jsonOut   = flag.String("json", "", "write the wall-clock/allocation profile as JSON to this file and exit")
	chaosMode = flag.Bool("chaos", false, "run the wire-hardening chaos differential (see chaos.go flags) and exit")
	onesided  = flag.String("onesided", "", "write the classic-vs-triggered one-sided comparison as JSON to this file and exit")
)

func main() {
	flag.Parse()
	if *jsonOut != "" {
		writeProfileJSON(*jsonOut)
		return
	}
	if *onesided != "" {
		writeOneSidedJSON(*onesided)
		return
	}
	if *chaosMode {
		runChaos()
		return
	}
	if *loadgenOut != "" {
		runLoadgenBench()
		return
	}
	if *jobsFlag > 0 {
		runMultiTenant()
		return
	}
	if *scaleVerify != "" {
		runScaleVerify()
		return
	}
	if *nodesFlag > 0 {
		runScaleBench()
		return
	}
	if *backend == transport.BackendLive {
		// The paper's experiments measure the calibrated virtual-time model,
		// which only exists on the simulated backend; the live backend runs
		// the CPU-only ping-pong to exercise the real-goroutine engine.
		if *exp != "all" && *exp != "pingpong" {
			log.Fatalf("experiment %q needs -backend sim (the calibrated virtual-time model)", *exp)
		}
		pingpong()
		return
	}
	run := func(name string, fn func()) {
		if *exp == "all" || *exp == name {
			fn()
			fmt.Println()
		}
	}
	run("table1", table1)
	run("fig6", fig6)
	run("fig7", fig7)
	run("mandelbrot", mandelbrot)
	run("cannon", cannon)
	run("nbody", nbody)
	run("pingpong", pingpong)
	switch *exp {
	case "all", "table1", "fig6", "fig7", "mandelbrot", "cannon", "nbody", "pingpong":
	default:
		log.Fatalf("unknown experiment %q", *exp)
	}
}

// pingpong runs a CPU:CPU cross-node ping-pong on the selected backend —
// the one experiment that exercises both the deterministic simulated
// transport (virtual time) and the live goroutine transport (wall clock).
func pingpong() {
	fmt.Printf("== Ping-pong: 2 nodes, 1 CPU rank each, backend=%s ==\n", *backend)
	const iters = 100
	var rows [][]string
	for _, size := range []int{0, 1 << 10, 64 << 10, 1 << 20} {
		cfg := core.DefaultConfig()
		cfg.Nodes, cfg.CPUKernels, cfg.GPUs = 2, 1, 0
		cfg.Transport.Backend = *backend
		job := core.NewJob(cfg)
		job.SetCPUKernel(func(c *core.CPUCtx) {
			buf := make([]byte, size)
			for i := 0; i < iters; i++ {
				switch c.Rank() {
				case 0:
					check(c.Send(1, buf))
					_, err := c.Recv(1, buf)
					check(err)
				case 1:
					_, err := c.Recv(0, buf)
					check(err)
					check(c.Send(0, buf))
				}
			}
		})
		rep, err := job.Run()
		check(err)
		rows = append(rows, []string{
			metrics.FormatBytes(float64(size)),
			metrics.FormatDuration(rep.Elapsed / (2 * iters)),
			fmt.Sprintf("%d", rep.NetPackets),
			fmt.Sprintf("%d", rep.Requests),
		})
	}
	clock := "virtual"
	if *backend == transport.BackendLive {
		clock = "wall-clock"
	}
	metrics.WriteAligned(os.Stdout, []string{"Size", "One-way (" + clock + ")", "Packets", "Requests"}, rows)
}

func table1() {
	fmt.Println("== Table 1: Barrier timings for CPUs and GPUs ==")
	rows := []struct {
		nodes, cpus, gpus int // per-node counts
	}{
		{1, 2, 0}, {1, 0, 2}, {1, 1, 1}, {1, 2, 2},
		{2, 2, 0}, {2, 0, 2}, {2, 2, 2},
		{4, 2, 0}, {4, 0, 2}, {4, 2, 2},
	}
	var out [][]string
	for _, r := range rows {
		mpiCol, ratio := "—", "—"
		var mpiT time.Duration
		if r.gpus == 0 {
			m, err := apps.MPIBarrier(gas.DefaultConfig(), r.nodes, r.cpus)
			check(err)
			mpiT = m
			mpiCol = metrics.FormatDuration(m)
		}
		d, err := apps.DCGNBarrier(core.DefaultConfig(), r.nodes, r.cpus, r.gpus)
		check(err)
		if mpiT > 0 {
			ratio = metrics.Ratio(d, mpiT)
		}
		cfgStr := fmt.Sprintf("%d CPUs/%d GPUs", r.nodes*r.cpus, r.nodes*r.gpus)
		out = append(out, []string{
			fmt.Sprintf("%d", r.nodes), cfgStr, mpiCol, metrics.FormatDuration(d), ratio,
		})
	}
	metrics.WriteAligned(os.Stdout, []string{"Nodes", "Configuration", "MPI (CPU)", "DCGN", "Ratio"}, out)
}

func fig6() {
	fmt.Println("== Figure 6: Send times (one-way) vs message size ==")
	s := metrics.NewSeries()
	for _, size := range apps.SendSizes {
		m, err := apps.MPISendOneWay(gas.DefaultConfig(), size)
		check(err)
		s.Add("MVAPICH2", float64(size), m)
		cc, err := apps.DCGNSendOneWay(core.DefaultConfig(), apps.EPCPU, apps.EPCPU, size)
		check(err)
		s.Add("DCGN CPU:CPU", float64(size), cc)
		cg, err := apps.DCGNSendOneWay(core.DefaultConfig(), apps.EPCPU, apps.EPGPU, size)
		check(err)
		s.Add("DCGN CPU:GPU", float64(size), cg)
		gc, err := apps.DCGNSendOneWay(core.DefaultConfig(), apps.EPGPU, apps.EPCPU, size)
		check(err)
		s.Add("DCGN GPU:CPU", float64(size), gc)
		gg, err := apps.DCGNSendOneWay(core.DefaultConfig(), apps.EPGPU, apps.EPGPU, size)
		check(err)
		s.Add("DCGN GPU:GPU", float64(size), gg)
	}
	s.WriteTable(os.Stdout, "Size", metrics.FormatBytes)
}

func fig7() {
	fmt.Println("== Figure 7: Broadcast completion time, 8 ranks over 4 nodes ==")
	s := metrics.NewSeries()
	for _, size := range apps.BcastSizes {
		m, err := apps.MPIBroadcast(gas.DefaultConfig(), size)
		check(err)
		s.Add("MVAPICH2 8 CPUs", float64(size), m)
		c, err := apps.DCGNBroadcastCPU(core.DefaultConfig(), size)
		check(err)
		s.Add("DCGN 8 CPUs", float64(size), c)
		g, err := apps.DCGNBroadcastGPU(core.DefaultConfig(), size)
		check(err)
		s.Add("DCGN 8 GPUs", float64(size), g)
	}
	s.WriteTable(os.Stdout, "Size", metrics.FormatBytes)
}

func mandelbrot() {
	fmt.Println("== §5.1 Mandelbrot: dynamic work queue, 8 GPUs ==")
	mc := apps.DefaultMandelConfig()
	t1, err := apps.MandelbrotSingleGPU(gasCfg(1, 0, 1), mc)
	check(err)
	g, err := apps.MandelbrotGAS(gasCfg(4, 1, 2), mc)
	check(err)
	d, err := apps.MandelbrotDCGN(dcgnCfg(4, 1, 2), mc)
	check(err)
	fmt.Printf("single GPU baseline: %v (%.1f Mpixels/s)\n", t1.Elapsed, t1.PixelsPerSec/1e6)
	metrics.WriteAligned(os.Stdout,
		[]string{"Model", "Time", "Mpixels/s", "Speedup", "Efficiency"},
		[][]string{
			{"GAS+MPI", metrics.FormatDuration(g.Elapsed), fmt.Sprintf("%.1f", g.PixelsPerSec/1e6),
				fmt.Sprintf("%.2fx", metrics.Speedup(t1.Elapsed, g.Elapsed)),
				fmt.Sprintf("%.0f%%", 100*metrics.Efficiency(t1.Elapsed, g.Elapsed, 8))},
			{"DCGN", metrics.FormatDuration(d.Elapsed), fmt.Sprintf("%.1f", d.PixelsPerSec/1e6),
				fmt.Sprintf("%.2fx", metrics.Speedup(t1.Elapsed, d.Elapsed)),
				fmt.Sprintf("%.0f%%", 100*metrics.Efficiency(t1.Elapsed, d.Elapsed, 8))},
		})
	fmt.Println("(paper: GAS 3.08x / 38% / ~17M px/s; DCGN 2.72x / 34% / ~15M px/s)")
}

func cannon() {
	fmt.Println("== §5.1 Cannon's matrix multiplication: 1024x1024, 4 GPUs ==")
	cc := apps.DefaultCannonConfig()
	t1, err := apps.MatmulSingleGPU(gasCfg(1, 0, 1), cc)
	check(err)
	g, err := apps.CannonGAS(gasCfg(2, 0, 2), cc)
	check(err)
	d, err := apps.CannonDCGN(dcgnCfg(2, 0, 2), cc)
	check(err)
	fmt.Printf("single GPU baseline: %v\n", t1.Elapsed)
	metrics.WriteAligned(os.Stdout,
		[]string{"Model", "Time", "GFLOPS", "Efficiency"},
		[][]string{
			{"GAS+MPI", metrics.FormatDuration(g.Elapsed), fmt.Sprintf("%.1f", g.GFLOPS),
				fmt.Sprintf("%.0f%%", 100*metrics.Efficiency(t1.Elapsed, g.Elapsed, 4))},
			{"DCGN", metrics.FormatDuration(d.Elapsed), fmt.Sprintf("%.1f", d.GFLOPS),
				fmt.Sprintf("%.0f%%", 100*metrics.Efficiency(t1.Elapsed, d.Elapsed, 4))},
		})
	fmt.Println("(paper: GAS 74%, DCGN 71%)")
}

func nbody() {
	fmt.Println("== §5.1 N-body: brute force, 8 GPUs, efficiency vs bodies ==")
	var rows [][]string
	for _, bodies := range []int{4096, 16384, 32768} {
		nc := apps.DefaultNBodyConfig()
		nc.Bodies = bodies
		t1, err := apps.NBodySingleGPU(gasCfg(1, 0, 1), nc)
		check(err)
		g, err := apps.NBodyGAS(gasCfg(4, 0, 2), nc)
		check(err)
		d, err := apps.NBodyDCGN(dcgnCfg(4, 0, 2), nc)
		check(err)
		rows = append(rows, []string{
			fmt.Sprintf("%d", bodies),
			metrics.FormatDuration(t1.StepTime),
			fmt.Sprintf("%.0f%%", 100*metrics.Efficiency(t1.Elapsed, g.Elapsed, 8)),
			fmt.Sprintf("%.0f%%", 100*metrics.Efficiency(t1.Elapsed, d.Elapsed, 8)),
		})
	}
	metrics.WriteAligned(os.Stdout,
		[]string{"Bodies", "1-GPU step", "GAS eff", "DCGN eff"}, rows)
	fmt.Println("(paper: 28% @4k, 64% @16k, >90% @32k; DCGN == GAS)")
}

func gasCfg(nodes, cpus, gpus int) gas.Config {
	cfg := gas.DefaultConfig()
	cfg.Nodes, cfg.CPUsPerNode, cfg.GPUsPerNode = nodes, cpus, gpus
	return cfg
}

func dcgnCfg(nodes, cpus, gpus int) core.Config {
	cfg := core.DefaultConfig()
	cfg.Nodes, cfg.CPUKernels, cfg.GPUs = nodes, cpus, gpus
	return cfg
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
