package main

import (
	"encoding/json"
	"fmt"
	"log"
	"os"

	"dcgn/internal/apps"
	"dcgn/internal/core"
)

// onesidedEntry is one message size's classic-vs-triggered comparison:
// the classic path relays a GPU-sourced send through mailbox copy, monitor
// poll and comm-thread matching; the triggered path fires a device-enqueued
// descriptor straight from the NIC model into the remote window. Polls and
// control-plane PCIe operations are whole-run counts — the delta columns
// are the polling tax the one-sided lane eliminates.
type onesidedEntry struct {
	Size            int     `json:"size"`
	ClassicNs       int64   `json:"classic_ns"`
	TriggeredNs     int64   `json:"triggered_ns"`
	ClassicPolls    int     `json:"classic_polls"`
	TriggeredPolls  int     `json:"triggered_polls"`
	ClassicHits     int     `json:"classic_poll_hits"`
	TriggeredHits   int     `json:"triggered_poll_hits"`
	ClassicCtlOps   int     `json:"classic_ctl_ops"`
	TriggeredCtlOps int     `json:"triggered_ctl_ops"`
	Speedup         float64 `json:"speedup"`
	PollsDelta      int     `json:"polls_delta"`
	CtlOpsDelta     int     `json:"ctl_ops_delta"`
}

// writeOneSidedJSON measures the GPU→CPU one-way latency over both paths
// for every Fig. 6 size and writes the comparison to path (BENCH_7.json in
// CI), printing the same rows as a table.
func writeOneSidedJSON(path string) {
	var entries []onesidedEntry
	fmt.Println("One-sided ablation: classic device-sourced send vs GPU-triggered put (GPU node0 -> CPU node1)")
	fmt.Printf("%10s %14s %14s %9s %8s %8s %8s %8s %8s %8s\n",
		"size", "classic-ns", "triggered-ns", "speedup", "cl-poll", "tr-poll", "cl-hit", "tr-hit", "cl-ctl", "tr-ctl")
	for _, size := range apps.SendSizes {
		classic, crep, err := apps.DCGNSendOneWayReport(core.DefaultConfig(), apps.EPGPU, apps.EPCPU, size)
		if err != nil {
			log.Fatalf("classic %dB: %v", size, err)
		}
		triggered, trep, err := apps.DCGNTriggeredOneWay(core.DefaultConfig(), size)
		if err != nil {
			log.Fatalf("triggered %dB: %v", size, err)
		}
		e := onesidedEntry{
			Size:            size,
			ClassicNs:       classic.Nanoseconds(),
			TriggeredNs:     triggered.Nanoseconds(),
			ClassicPolls:    crep.Polls,
			TriggeredPolls:  trep.Polls,
			ClassicHits:     crep.PollHits,
			TriggeredHits:   trep.PollHits,
			ClassicCtlOps:   crep.BusCtlOps,
			TriggeredCtlOps: trep.BusCtlOps,
			Speedup:         float64(classic) / float64(triggered),
			PollsDelta:      crep.Polls - trep.Polls,
			CtlOpsDelta:     crep.BusCtlOps - trep.BusCtlOps,
		}
		entries = append(entries, e)
		fmt.Printf("%10s %14d %14d %8.2fx %8d %8d %8d %8d %8d %8d\n",
			sizeLabel(size), e.ClassicNs, e.TriggeredNs, e.Speedup,
			e.ClassicPolls, e.TriggeredPolls, e.ClassicHits, e.TriggeredHits,
			e.ClassicCtlOps, e.TriggeredCtlOps)
	}
	data, err := json.MarshalIndent(entries, "", "\t")
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s (%d sizes)\n", path, len(entries))
}

// sizeLabel names a payload size for the comparison table rows.
func sizeLabel(n int) string {
	switch {
	case n == 0:
		return "0B"
	case n < 1<<20:
		return fmt.Sprintf("%dkB", n>>10)
	default:
		return fmt.Sprintf("%dMB", n>>20)
	}
}
