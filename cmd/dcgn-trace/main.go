// Command dcgn-trace runs a small mixed CPU+GPU DCGN job with request
// tracing enabled and prints every communication request's lifecycle —
// a direct, inspectable rendition of the paper's Fig. 2 dataflow (post,
// relay, completion) including the polling delays GPU-sourced requests
// accumulate.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"dcgn/internal/core"
	"dcgn/internal/device"
)

var (
	poll   = flag.Duration("poll", 120*time.Microsecond, "GPU poll interval")
	future = flag.Bool("future", false, "enable the §7 future-hardware mode (device signaling + GPUDirect)")
)

func main() {
	flag.Parse()
	cfg := core.DefaultConfig()
	cfg.Nodes, cfg.CPUKernels, cfg.GPUs, cfg.SlotsPerGPU = 2, 1, 1, 1
	cfg.PollInterval = *poll
	cfg.Trace = true
	if *future {
		cfg.FutureHW.DeviceSignal = true
		cfg.FutureHW.GPUDirect = true
	}
	job := core.NewJob(cfg)
	// Ranks: 0 = CPU node 0, 1 = GPU node 0, 2 = CPU node 1, 3 = GPU node 1.

	job.SetCPUKernel(func(c *core.CPUCtx) {
		buf := make([]byte, 4096)
		switch c.Rank() {
		case 0:
			if err := c.Send(3, buf); err != nil { // CPU -> remote GPU
				panic(err)
			}
			if _, err := c.Recv(core.AnySource, buf); err != nil { // <- GPU
				panic(err)
			}
		case 2:
			if _, err := c.Recv(3, buf); err != nil { // <- GPU on node 1
				panic(err)
			}
		}
		c.Barrier()
	})
	job.SetGPUSetup(func(s *core.GPUSetup) {
		s.Args["buf"] = s.Dev.Mem().MustAlloc(4096)
	})
	job.SetGPUKernel(1, 8, func(g *core.GPUCtx) {
		ptr := g.Arg("buf").(device.Ptr)
		switch g.Rank(0) {
		case 3:
			if _, err := g.Recv(0, 0, ptr, 4096); err != nil { // <- CPU 0
				panic(err)
			}
			if err := g.Send(0, 0, ptr, 4096); err != nil { // -> CPU 0
				panic(err)
			}
			if err := g.Send(0, 2, ptr, 4096); err != nil { // -> CPU 2
				panic(err)
			}
		}
		g.Barrier(0)
	})

	rep, err := job.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("job finished in %v virtual time; %d requests, %d polls (%d productive)\n\n",
		rep.Elapsed, rep.Requests, rep.Polls, rep.PollHits)
	core.WriteTrace(os.Stdout, rep.Trace)
	fmt.Println("\nGPU-sourced requests show the polling stages (discovery, relay,")
	fmt.Println("completion write-back) in their latency; re-run with -future to see")
	fmt.Println("them collapse, or sweep -poll to trade latency against CPU load.")
}
