// Command dcgn-trace runs a small mixed CPU+GPU DCGN job with request
// tracing enabled and renders every communication request's lifecycle —
// a direct, inspectable rendition of the paper's Fig. 2 dataflow (post,
// relay, completion) including the polling delays GPU-sourced requests
// accumulate.
//
// Three renderings of the same spans:
//
//	-format table   chronological text table (default)
//	-format chrome  Chrome trace-event JSON; load at ui.perfetto.dev to
//	                see one track per node x engine layer (requests,
//	                intake, match, wire, ack)
//	-format csv     one row per request for spreadsheet/pandas analysis
//
// -metrics additionally prints the run's latency histograms (match wait,
// queue depth, collective accumulation) from the metrics registry.
//
// -flows enables causal flow tracing (Config.Flows): spans carry trace
// and span IDs, and the chrome format draws Perfetto flow arrows from
// each wire send to its matched receive. -critical-path (implies -flows
// and the reliability layer, so ack waits are visible) additionally
// prints the run's critical path with per-phase attribution and the
// -topk slowest stitched flows — both bit-deterministic per seed, which
// is what the CI determinism check diffs.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"time"

	"dcgn/internal/core"
	"dcgn/internal/device"
	"dcgn/internal/metrics"
	"dcgn/internal/obs"
	"dcgn/internal/obs/flow"
)

var (
	poll        = flag.Duration("poll", 120*time.Microsecond, "GPU poll interval")
	future      = flag.Bool("future", false, "enable the §7 future-hardware mode (device signaling + GPUDirect)")
	nodes       = flag.Int("nodes", 2, "cluster nodes (each contributes one CPU-kernel rank and one single-slot GPU rank)")
	format      = flag.String("format", "table", "output format: table, chrome (Perfetto trace-event JSON), csv")
	outPath     = flag.String("o", "", "write the trace to this file instead of stdout")
	showMetrics = flag.Bool("metrics", false, "print the metrics-registry histograms after the trace (table format only)")
	flows       = flag.Bool("flows", false, "enable causal flow tracing (chrome format draws flow arrows)")
	critPath    = flag.Bool("critical-path", false, "print the critical path and slowest flows (implies -flows and reliability)")
	topk        = flag.Int("topk", 5, "slowest flows to print with -critical-path")
)

const payload = 4096

// traceConfig is the demo cluster: n nodes, one CPU-kernel thread and one
// single-slot GPU per node, so ranks alternate cpu, gpu node by node
// (rank 2i = CPU of node i, rank 2i+1 = its GPU).
func traceConfig(n int, poll time.Duration, future, withMetrics, withFlows, withCritPath bool) core.Config {
	cfg := core.DefaultConfig()
	cfg.Nodes, cfg.CPUKernels, cfg.GPUs, cfg.SlotsPerGPU = n, 1, 1, 1
	cfg.PollInterval = poll
	cfg.Trace = true
	cfg.Metrics = withMetrics
	cfg.Flows = withFlows || withCritPath
	if withCritPath {
		// The critical path attributes ack-wait time, so run the
		// reliability layer to have acks at all.
		cfg.Reliability.Enabled = true
	}
	if future {
		cfg.FutureHW.DeviceSignal = true
		cfg.FutureHW.GPUDirect = true
	}
	return cfg
}

// runTraceJob executes the demo workload on an n-node cluster: every CPU
// rank sends one payload to the *next* node's GPU and waits for the reply;
// every GPU receives from the *previous* node's CPU and echoes the payload
// back. All traffic crosses the wire, every receive exercises the matching
// index, and the closing barrier exercises the collective accumulator.
func runTraceJob(cfg core.Config) (core.Report, error) {
	n := cfg.Nodes
	job := core.NewJob(cfg)
	cpuOf := func(node int) int { return 2 * ((node%n + n) % n) }
	gpuOf := func(node int) int { return cpuOf(node) + 1 }

	job.SetCPUKernel(func(c *core.CPUCtx) {
		buf := make([]byte, payload)
		node := c.Rank() / 2
		if err := c.Send(gpuOf(node+1), buf); err != nil {
			panic(err)
		}
		if _, err := c.Recv(core.AnySource, buf); err != nil {
			panic(err)
		}
		c.Barrier()
	})
	job.SetGPUSetup(func(s *core.GPUSetup) {
		s.Args["buf"] = s.Dev.Mem().MustAlloc(payload)
	})
	job.SetGPUKernel(1, 8, func(g *core.GPUCtx) {
		ptr := g.Arg("buf").(device.Ptr)
		node := g.Rank(0) / 2
		if _, err := g.Recv(0, cpuOf(node-1), ptr, payload); err != nil {
			panic(err)
		}
		if err := g.Send(0, cpuOf(node-1), ptr, payload); err != nil {
			panic(err)
		}
		g.Barrier(0)
	})
	return job.Run()
}

func main() {
	flag.Parse()
	if *nodes < 2 {
		log.Fatal("dcgn-trace: -nodes must be >= 2 (the workload crosses the wire)")
	}
	rep, err := runTraceJob(traceConfig(*nodes, *poll, *future, *showMetrics, *flows, *critPath))
	if err != nil {
		log.Fatal(err)
	}

	var out io.Writer = os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			log.Fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
		}()
		out = f
	}

	switch *format {
	case "chrome":
		if err := obs.WriteChromeTrace(out, rep.Trace); err != nil {
			log.Fatal(err)
		}
	case "csv":
		if err := obs.WriteCSV(out, rep.Trace); err != nil {
			log.Fatal(err)
		}
	case "table":
		fmt.Fprintf(out, "job finished in %v virtual time; %d requests, %d polls (%d productive)\n\n",
			rep.Elapsed, rep.Requests, rep.Polls, rep.PollHits)
		core.WriteTrace(out, rep.Trace)
		if rep.TraceDropped > 0 {
			fmt.Fprintf(out, "\n(%d oldest spans overwritten; raise Config.TraceCap for the full run)\n", rep.TraceDropped)
		}
		if *showMetrics {
			fmt.Fprintln(out)
			metrics.WriteHistograms(out, rep.Histograms)
		}
		fmt.Fprintln(out, "\nGPU-sourced requests show the polling stages (discovery, relay,")
		fmt.Fprintln(out, "completion write-back) in their latency; re-run with -future to see")
		fmt.Fprintln(out, "them collapse, -poll to trade latency against CPU load, or")
		fmt.Fprintln(out, "-format chrome to inspect the same spans in Perfetto.")
	default:
		log.Fatalf("dcgn-trace: unknown -format %q (want table, chrome or csv)", *format)
	}

	// The critical-path analysis always prints to stdout: with -o the
	// format output goes to the file and this stays on the terminal (and
	// in CI, where the determinism check diffs it).
	if *critPath {
		fmt.Println()
		flow.WritePath(os.Stdout, rep.CriticalPath)
		top := flow.TopK(flow.Stitch(rep.Trace), *topk)
		fmt.Printf("\ntop %d slowest flows:\n", len(top))
		flow.WriteFlows(os.Stdout, top)
	}
}
