package main

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"testing"
	"time"

	"dcgn/internal/obs"
)

// fixtureReport runs the 4-node demo workload once per test binary — the
// fixture the exporter checks below share.
func fixtureReport(t *testing.T) (spans []obs.Span) {
	t.Helper()
	rep, err := runTraceJob(traceConfig(4, 120*time.Microsecond, false, false, false, false))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Trace) == 0 {
		t.Fatal("fixture run produced no spans")
	}
	return rep.Trace
}

// TestChromeTraceExport is the CI schema check for `dcgn-trace -format
// chrome`: the 4-node fixture's output must decode into the typed
// trace-event structs, name all four node processes, and carry intake,
// match and wire slices on every node's track set.
func TestChromeTraceExport(t *testing.T) {
	spans := fixtureReport(t)
	var buf bytes.Buffer
	if err := obs.WriteChromeTrace(&buf, spans); err != nil {
		t.Fatal(err)
	}
	var tr obs.ChromeTrace
	if err := json.Unmarshal(buf.Bytes(), &tr); err != nil {
		t.Fatalf("chrome export is not valid trace-event JSON: %v", err)
	}

	const nodes = 4
	processes := map[int]bool{}
	tracks := map[[2]int]bool{}
	slices := 0
	for _, ev := range tr.TraceEvents {
		switch ev.Ph {
		case "M":
			if ev.Name == "process_name" {
				processes[ev.Pid] = true
			}
		case "X":
			slices++
			tracks[[2]int{ev.Pid, ev.Tid}] = true
			if ev.Dur < 0 {
				t.Errorf("negative slice duration: %+v", ev)
			}
		default:
			t.Errorf("unexpected event phase %q", ev.Ph)
		}
	}
	if len(processes) != nodes {
		t.Errorf("named %d node processes, want %d", len(processes), nodes)
	}
	for n := 0; n < nodes; n++ {
		for _, tid := range []int{obs.TrackRequest, obs.TrackIntake, obs.TrackMatch, obs.TrackWire} {
			if !tracks[[2]int{n, tid}] {
				t.Errorf("node %d: no slice on the %s track", n, obs.TrackNames[tid])
			}
		}
	}
	// Every span contributes a whole-lifecycle slice; phase slices add more.
	if slices < len(spans) {
		t.Errorf("%d slices for %d spans; every span must appear on the requests track", slices, len(spans))
	}
}

// TestCSVExport checks the CSV rendering of the same fixture: one row per
// span plus the header, with the phase-timestamp column layout intact.
func TestCSVExport(t *testing.T) {
	spans := fixtureReport(t)
	var buf bytes.Buffer
	if err := obs.WriteCSV(&buf, spans); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(spans)+1 {
		t.Fatalf("rows = %d, want %d spans + header", len(rows), len(spans))
	}
	if rows[0][0] != "op" || rows[0][len(rows[0])-1] != "latency_ns" {
		t.Fatalf("unexpected header: %v", rows[0])
	}
}

// TestChromeTraceDeterminism pins that two identical sim runs export
// byte-identical Perfetto files — the exporter inherits the simulator's
// golden determinism.
func TestChromeTraceDeterminism(t *testing.T) {
	render := func() []byte {
		rep, err := runTraceJob(traceConfig(4, 120*time.Microsecond, false, false, false, false))
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := obs.WriteChromeTrace(&buf, rep.Trace); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if !bytes.Equal(render(), render()) {
		t.Fatal("chrome export diverged across identical sim runs")
	}
}
