// Command dcgn-mandel regenerates the paper's Figure 5: two runs of the
// Mandelbrot work-queue application with identical parameters but
// different timing jitter produce different strip-to-worker distributions,
// demonstrating that DCGN's communication is truly dynamic. Strips are
// rendered as colored bars (one character column per strip, one digit per
// owning worker).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"dcgn/internal/apps"
	"dcgn/internal/core"
)

var (
	seedA = flag.Int64("seedA", 1, "jitter seed of the first run")
	seedB = flag.Int64("seedB", 2, "jitter seed of the second run")
	width = flag.Int("width", 512, "image width")
	rows  = flag.Int("strip", 8, "rows per strip")
	ppm   = flag.String("ppm", "", "if set, write fig5-run{1,2}.ppm images (fractal tinted by owning worker) under this directory")
)

func main() {
	flag.Parse()
	mc := apps.DefaultMandelConfig()
	mc.Width = *width
	mc.Height = 256
	mc.StripRows = *rows
	mc.JitterFrac = 0.25

	runOnce := func(seed int64) apps.MandelResult {
		m := mc
		m.Seed = seed
		cfg := core.DefaultConfig()
		cfg.Nodes, cfg.CPUKernels, cfg.GPUs = 4, 1, 2
		res, err := apps.MandelbrotDCGN(cfg, m)
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	a := runOnce(*seedA)
	b := runOnce(*seedB)

	fmt.Printf("Figure 5: Mandelbrot strip ownership across %d GPU workers\n", a.Workers)
	fmt.Printf("(%d strips; each column is one strip, the digit is the owning worker)\n\n", len(a.StripOwner))
	fmt.Printf("run 1 (seed %d): %s\n", *seedA, ownerBar(a.StripOwner))
	fmt.Printf("run 2 (seed %d): %s\n", *seedB, ownerBar(b.StripOwner))

	diff := 0
	for i := range a.StripOwner {
		if a.StripOwner[i] != b.StripOwner[i] {
			diff++
		}
	}
	fmt.Printf("\n%d/%d strips changed hands between the runs — identical parameters,\n", diff, len(a.StripOwner))
	fmt.Println("different work distribution: network/device timing decides who gets what.")

	fmt.Println("\nstrips per worker:")
	counts := func(owner []int, workers int) []int {
		c := make([]int, workers)
		for _, w := range owner {
			c[w]++
		}
		return c
	}
	ca, cb := counts(a.StripOwner, a.Workers), counts(b.StripOwner, b.Workers)
	for w := 0; w < a.Workers; w++ {
		fmt.Printf("  worker %d: run1 %-3d %s\n", w, ca[w], strings.Repeat("#", ca[w]))
		fmt.Printf("           run2 %-3d %s\n", cb[w], strings.Repeat("#", cb[w]))
	}

	if *ppm != "" {
		m := mc
		for i, res := range []apps.MandelResult{a, b} {
			path := fmt.Sprintf("%s/fig5-run%d.ppm", *ppm, i+1)
			if err := writePPM(path, m, res); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("wrote %s\n", path)
		}
	}
}

// ownerBar renders the strip owners as a row of digits.
func ownerBar(owner []int) string {
	var sb strings.Builder
	for _, w := range owner {
		sb.WriteByte(byte('0' + w%10))
	}
	return sb.String()
}

// workerPalette are the per-worker tints of the PPM rendering (Fig. 5's
// color-coding).
var workerPalette = [8][3]float64{
	{1.0, 0.35, 0.35}, {0.35, 1.0, 0.35}, {0.4, 0.55, 1.0}, {1.0, 1.0, 0.35},
	{1.0, 0.45, 1.0}, {0.35, 1.0, 1.0}, {1.0, 0.65, 0.3}, {0.75, 0.75, 0.75},
}

// writePPM renders the fractal with brightness from the iteration count
// and hue from the strip's owning worker — a direct analogue of Fig. 5.
func writePPM(path string, mc apps.MandelConfig, res apps.MandelResult) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if _, err := fmt.Fprintf(f, "P6\n%d %d\n255\n", mc.Width, mc.Height); err != nil {
		return err
	}
	row := make([]byte, 3*mc.Width)
	for y := 0; y < mc.Height; y++ {
		strip := y / mc.StripRows
		tint := workerPalette[res.StripOwner[strip]%len(workerPalette)]
		for x := 0; x < mc.Width; x++ {
			it := float64(res.Image[y*mc.Width+x])
			v := 0.25 + 0.75*it/float64(mc.MaxIter)
			if int(it) >= mc.MaxIter {
				v = 0.08 // interior of the set stays dark
			}
			row[3*x+0] = byte(255 * v * tint[0])
			row[3*x+1] = byte(255 * v * tint[1])
			row[3*x+2] = byte(255 * v * tint[2])
		}
		if _, err := f.Write(row); err != nil {
			return err
		}
	}
	return nil
}
