// Command lintdoc enforces doc comments on the repository's exported API
// without pulling in an external linter. It walks every non-test Go file,
// parses it with go/ast and reports any exported package-level
// declaration — function, method on an exported type, type, constant or
// variable — that has no doc comment. A method or grouped const/var is
// covered by a comment on its enclosing declaration.
//
// Usage:
//
//	go run ./cmd/lintdoc [dir]
//
// The default dir is the current directory. The exit status is non-zero
// if any undocumented exported declaration is found, so `make lintdoc`
// and CI can gate on it.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	var problems []string
	fset := token.NewFileSet()
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name != "." && (strings.HasPrefix(name, ".") || name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		file, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return err
		}
		problems = append(problems, checkFile(fset, file)...)
		return nil
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "lintdoc:", err)
		os.Exit(2)
	}
	sort.Strings(problems)
	for _, p := range problems {
		fmt.Println(p)
	}
	if len(problems) > 0 {
		fmt.Fprintf(os.Stderr, "lintdoc: %d undocumented exported declaration(s)\n", len(problems))
		os.Exit(1)
	}
}

// checkFile reports every undocumented exported top-level declaration in
// one parsed file.
func checkFile(fset *token.FileSet, file *ast.File) []string {
	var problems []string
	report := func(pos token.Pos, kind, name string) {
		p := fset.Position(pos)
		problems = append(problems, fmt.Sprintf("%s:%d: exported %s %s is undocumented", p.Filename, p.Line, kind, name))
	}
	for _, decl := range file.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if !d.Name.IsExported() || d.Doc != nil {
				continue
			}
			if d.Recv != nil {
				// Methods: only require docs when the receiver type is
				// itself exported (methods implementing an interface on an
				// unexported type are internal detail).
				recv := receiverName(d.Recv)
				if !ast.IsExported(recv) {
					continue
				}
				report(d.Pos(), "method", recv+"."+d.Name.Name)
				continue
			}
			report(d.Pos(), "function", d.Name.Name)
		case *ast.GenDecl:
			if d.Tok != token.TYPE && d.Tok != token.CONST && d.Tok != token.VAR {
				continue
			}
			for _, spec := range d.Specs {
				switch s := spec.(type) {
				case *ast.TypeSpec:
					if s.Name.IsExported() && d.Doc == nil && s.Doc == nil {
						report(s.Pos(), "type", s.Name.Name)
					}
				case *ast.ValueSpec:
					// A doc comment on the grouped decl covers all specs.
					if d.Doc != nil || s.Doc != nil {
						continue
					}
					for _, n := range s.Names {
						if n.IsExported() {
							report(n.Pos(), strings.ToLower(d.Tok.String()), n.Name)
						}
					}
				}
			}
		}
	}
	return problems
}

// receiverName extracts the receiver's type name ("T" for both T and *T).
func receiverName(recv *ast.FieldList) string {
	if len(recv.List) == 0 {
		return ""
	}
	t := recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	switch e := t.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.IndexExpr: // generic receiver T[P]
		if id, ok := e.X.(*ast.Ident); ok {
			return id.Name
		}
	case *ast.IndexListExpr:
		if id, ok := e.X.(*ast.Ident); ok {
			return id.Name
		}
	}
	return ""
}
