package dcgn_test

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (§5), plus ablations over the design choices DESIGN.md calls
// out. The experiments run in deterministic virtual time, so the numbers
// of interest are the custom metrics (reported in virtual nanoseconds /
// ratios), not ns/op wall time. `go test -bench=. -benchmem` regenerates
// everything; cmd/dcgn-bench prints the same data as tables.

import (
	"fmt"
	"testing"
	"time"

	"dcgn"
	"dcgn/internal/apps"
	"dcgn/internal/core"
	"dcgn/internal/gas"
	"dcgn/internal/metrics"
)

func gasCfg(nodes, cpus, gpus int) gas.Config {
	cfg := gas.DefaultConfig()
	cfg.Nodes, cfg.CPUsPerNode, cfg.GPUsPerNode = nodes, cpus, gpus
	return cfg
}

func dcgnCfg(nodes, cpus, gpus int) core.Config {
	cfg := core.DefaultConfig()
	cfg.Nodes, cfg.CPUKernels, cfg.GPUs = nodes, cpus, gpus
	return cfg
}

// BenchmarkTable1Barrier regenerates Table 1: barrier latency for MPI and
// DCGN across node counts and CPU/GPU configurations.
func BenchmarkTable1Barrier(b *testing.B) {
	rows := []struct {
		nodes, cpus, gpus int
	}{
		{1, 2, 0}, {1, 0, 2}, {1, 1, 1}, {1, 2, 2},
		{2, 2, 0}, {2, 0, 2}, {2, 2, 2},
		{4, 2, 0}, {4, 0, 2}, {4, 2, 2},
	}
	for _, row := range rows {
		name := fmt.Sprintf("%dnode_%dC_%dG", row.nodes, row.nodes*row.cpus, row.nodes*row.gpus)
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				d, err := apps.DCGNBarrier(core.DefaultConfig(), row.nodes, row.cpus, row.gpus)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(d.Nanoseconds()), "dcgn-ns")
				if row.gpus == 0 {
					m, err := apps.MPIBarrier(gas.DefaultConfig(), row.nodes, row.cpus)
					if err != nil {
						b.Fatal(err)
					}
					b.ReportMetric(float64(m.Nanoseconds()), "mpi-ns")
					b.ReportMetric(float64(d)/float64(m), "ratio")
				}
			}
		})
	}
}

// BenchmarkFig6Send regenerates Figure 6: one-way send time vs message
// size for MVAPICH2 and every DCGN endpoint pairing.
func BenchmarkFig6Send(b *testing.B) {
	pairings := []struct {
		name     string
		src, dst apps.Endpoint
	}{
		{"CPUtoCPU", apps.EPCPU, apps.EPCPU},
		{"CPUtoGPU", apps.EPCPU, apps.EPGPU},
		{"GPUtoCPU", apps.EPGPU, apps.EPCPU},
		{"GPUtoGPU", apps.EPGPU, apps.EPGPU},
	}
	for _, size := range apps.SendSizes {
		b.Run(fmt.Sprintf("MVAPICH2/%s", sizeName(size)), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				d, err := apps.MPISendOneWay(gas.DefaultConfig(), size)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(d.Nanoseconds()), "oneway-ns")
			}
		})
		for _, pr := range pairings {
			b.Run(fmt.Sprintf("DCGN_%s/%s", pr.name, sizeName(size)), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					d, err := apps.DCGNSendOneWay(core.DefaultConfig(), pr.src, pr.dst, size)
					if err != nil {
						b.Fatal(err)
					}
					b.ReportMetric(float64(d.Nanoseconds()), "oneway-ns")
				}
			})
		}
	}
}

// BenchmarkFig7Broadcast regenerates Figure 7: broadcast completion time
// with 8 ranks over 4 nodes for MVAPICH2-CPU, DCGN-CPU and DCGN-GPU.
func BenchmarkFig7Broadcast(b *testing.B) {
	for _, size := range apps.BcastSizes {
		b.Run(fmt.Sprintf("MVAPICH2_8CPUs/%s", sizeName(size)), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				d, err := apps.MPIBroadcast(gas.DefaultConfig(), size)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(d.Nanoseconds()), "bcast-ns")
			}
		})
		b.Run(fmt.Sprintf("DCGN_8CPUs/%s", sizeName(size)), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				d, err := apps.DCGNBroadcastCPU(core.DefaultConfig(), size)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(d.Nanoseconds()), "bcast-ns")
			}
		})
		b.Run(fmt.Sprintf("DCGN_8GPUs/%s", sizeName(size)), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				d, err := apps.DCGNBroadcastGPU(core.DefaultConfig(), size)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(d.Nanoseconds()), "bcast-ns")
			}
		})
	}
}

// BenchmarkFig5MandelbrotDistribution regenerates Figure 5's effect: the
// fraction of strips that change owners between two jitter seeds.
func BenchmarkFig5MandelbrotDistribution(b *testing.B) {
	mc := apps.DefaultMandelConfig()
	mc.Width, mc.Height = 512, 256
	mc.JitterFrac = 0.25
	for i := 0; i < b.N; i++ {
		mc.Seed = 1
		r1, err := apps.MandelbrotDCGN(dcgnCfg(4, 1, 2), mc)
		if err != nil {
			b.Fatal(err)
		}
		mc.Seed = 2
		r2, err := apps.MandelbrotDCGN(dcgnCfg(4, 1, 2), mc)
		if err != nil {
			b.Fatal(err)
		}
		moved := 0
		for s := range r1.StripOwner {
			if r1.StripOwner[s] != r2.StripOwner[s] {
				moved++
			}
		}
		b.ReportMetric(100*float64(moved)/float64(len(r1.StripOwner)), "strips-moved-%")
	}
}

// BenchmarkSec51Mandelbrot regenerates the §5.1 Mandelbrot results:
// speedup, efficiency and pixel throughput for GAS and DCGN on 8 GPUs.
func BenchmarkSec51Mandelbrot(b *testing.B) {
	mc := apps.DefaultMandelConfig()
	for i := 0; i < b.N; i++ {
		t1, err := apps.MandelbrotSingleGPU(gasCfg(1, 0, 1), mc)
		if err != nil {
			b.Fatal(err)
		}
		g, err := apps.MandelbrotGAS(gasCfg(4, 1, 2), mc)
		if err != nil {
			b.Fatal(err)
		}
		d, err := apps.MandelbrotDCGN(dcgnCfg(4, 1, 2), mc)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(g.PixelsPerSec/1e6, "gas-Mpix/s")
		b.ReportMetric(d.PixelsPerSec/1e6, "dcgn-Mpix/s")
		b.ReportMetric(100*metrics.Efficiency(t1.Elapsed, g.Elapsed, 8), "gas-eff-%")
		b.ReportMetric(100*metrics.Efficiency(t1.Elapsed, d.Elapsed, 8), "dcgn-eff-%")
	}
}

// BenchmarkSec51Cannon regenerates the §5.1 Cannon results: efficiency of
// GAS and DCGN at 1024x1024 on 4 GPUs.
func BenchmarkSec51Cannon(b *testing.B) {
	cc := apps.DefaultCannonConfig()
	for i := 0; i < b.N; i++ {
		t1, err := apps.MatmulSingleGPU(gasCfg(1, 0, 1), cc)
		if err != nil {
			b.Fatal(err)
		}
		g, err := apps.CannonGAS(gasCfg(2, 0, 2), cc)
		if err != nil {
			b.Fatal(err)
		}
		d, err := apps.CannonDCGN(dcgnCfg(2, 0, 2), cc)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*metrics.Efficiency(t1.Elapsed, g.Elapsed, 4), "gas-eff-%")
		b.ReportMetric(100*metrics.Efficiency(t1.Elapsed, d.Elapsed, 4), "dcgn-eff-%")
	}
}

// BenchmarkSec51NBody regenerates the §5.1 N-body efficiency curve on
// 8 GPUs for 4k/16k/32k bodies.
func BenchmarkSec51NBody(b *testing.B) {
	for _, bodies := range []int{4096, 16384, 32768} {
		b.Run(fmt.Sprintf("%dbodies", bodies), func(b *testing.B) {
			nc := apps.DefaultNBodyConfig()
			nc.Bodies = bodies
			for i := 0; i < b.N; i++ {
				t1, err := apps.NBodySingleGPU(gasCfg(1, 0, 1), nc)
				if err != nil {
					b.Fatal(err)
				}
				g, err := apps.NBodyGAS(gasCfg(4, 0, 2), nc)
				if err != nil {
					b.Fatal(err)
				}
				d, err := apps.NBodyDCGN(dcgnCfg(4, 0, 2), nc)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(100*metrics.Efficiency(t1.Elapsed, g.Elapsed, 8), "gas-eff-%")
				b.ReportMetric(100*metrics.Efficiency(t1.Elapsed, d.Elapsed, 8), "dcgn-eff-%")
			}
		})
	}
}

// BenchmarkAblationPollInterval sweeps the GPU poll interval: the paper's
// §3.2.3 latency-vs-CPU-load trade-off. Reported: GPU:GPU one-way latency
// and the number of poll transactions the run needed.
func BenchmarkAblationPollInterval(b *testing.B) {
	for _, poll := range []time.Duration{15 * time.Microsecond, 60 * time.Microsecond, 120 * time.Microsecond, 480 * time.Microsecond} {
		b.Run(poll.String(), func(b *testing.B) {
			cfg := core.DefaultConfig()
			cfg.PollInterval = poll
			for i := 0; i < b.N; i++ {
				d, err := apps.DCGNSendOneWay(cfg, apps.EPGPU, apps.EPGPU, 1024)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(d.Nanoseconds()), "oneway-ns")
			}
		})
	}
}

// BenchmarkAblationSlotsPerGPU reproduces the paper's §3.1 motivation for
// slots: a heavy-tailed work queue where one slow item stalls a
// single-slot device but not a multi-slot one.
func BenchmarkAblationSlotsPerGPU(b *testing.B) {
	for _, slots := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("%dslots", slots), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				d, err := apps.SlotsAblation(core.DefaultConfig(), apps.DefaultSlotsConfig(slots))
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(d.Nanoseconds()), "makespan-ns")
			}
		})
	}
}

// BenchmarkAblationEagerLimit sweeps the MPI eager/rendezvous threshold
// around a 16 kB payload.
func BenchmarkAblationEagerLimit(b *testing.B) {
	for _, limit := range []int{1 << 10, 8 << 10, 64 << 10} {
		b.Run(fmt.Sprintf("limit%dk", limit>>10), func(b *testing.B) {
			cfg := gas.DefaultConfig()
			cfg.MPI.EagerLimit = limit
			for i := 0; i < b.N; i++ {
				d, err := apps.MPISendOneWay(cfg, 16<<10)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(d.Nanoseconds()), "oneway-ns")
			}
		})
	}
}

// BenchmarkAblationTreeDispersal compares the paper's sequential local
// dispersal of collective results against its proposed tree dispersal
// (§3.2.3 "one optimization intended for the future"), on a single node
// with 8 CPU ranks broadcasting 512 kB.
func BenchmarkAblationTreeDispersal(b *testing.B) {
	for _, tree := range []bool{false, true} {
		name := "sequential"
		if tree {
			name = "tree"
		}
		b.Run(name, func(b *testing.B) {
			cfg := core.DefaultConfig()
			cfg.Params.TreeDispersal = tree
			for i := 0; i < b.N; i++ {
				d, err := apps.DCGNBroadcastCPUShape(cfg, 1, 8, 512<<10)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(d.Nanoseconds()), "bcast-ns")
			}
		})
	}
}

// BenchmarkHighFanoutMatching stresses the comm thread's matching index
// at ROADMAP scale: one sink rank posts thousands of nonblocking receives
// up front while 16 local sources blast messages at it, so the node's
// pending population holds in the thousands. The seed's linear scans made
// this workload quadratic in the in-flight count; the indexed matcher
// keeps wall-clock per message flat (virtual time is identical by
// construction — matching is charged the same cost model either way).
func BenchmarkHighFanoutMatching(b *testing.B) {
	const sources = 16
	for _, inflight := range []int{64, 512, 4096} {
		b.Run(fmt.Sprintf("inflight%d", inflight), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rep, err := apps.HighFanout(core.DefaultConfig(), sources, inflight)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(rep.Elapsed.Nanoseconds()), "virtual-ns")
				b.ReportMetric(float64(rep.PeakPending), "peak-pending")
			}
		})
	}
}

// BenchmarkEnginePingPong drives the layered progress engine — intake,
// matcher, transport — through a fixed ping-pong workload on each backend.
// On the simulated backend the allocs/op column is deterministic and
// guarded by cmd/benchguard, so a new allocation anywhere on the
// request path (intake post, match, wire relay, completion) trips CI. The
// live variant reports wall-clock behavior of the same engine on real
// goroutines; its scheduling-dependent allocations are not guarded.
func BenchmarkEnginePingPong(b *testing.B) {
	const (
		iters   = 64
		payload = 1024
	)
	run := func(b *testing.B, backend string, reliable, traced, flows bool, shards int) {
		for i := 0; i < b.N; i++ {
			cfg := dcgn.DefaultConfig()
			cfg.Nodes, cfg.CPUKernels, cfg.GPUs = 2, 1, 0
			cfg.Transport.Backend = backend
			cfg.Reliability.Enabled = reliable
			cfg.Trace = traced
			cfg.Metrics = traced
			cfg.Flows = flows
			cfg.Shards = shards
			if backend == dcgn.BackendLive {
				cfg.MaxVirtualTime = 30 * time.Second // wall-clock watchdog
			}
			job := dcgn.NewJob(cfg)
			job.SetCPUKernel(func(c *dcgn.CPUCtx) {
				buf := make([]byte, payload)
				for k := 0; k < iters; k++ {
					var err error
					switch c.Rank() {
					case 0:
						if err = c.Send(1, buf); err == nil {
							_, err = c.Recv(1, buf)
						}
					case 1:
						if _, err = c.Recv(0, buf); err == nil {
							err = c.Send(0, buf)
						}
					}
					if err != nil {
						b.Error(err)
						return
					}
				}
			})
			rep, err := job.Run()
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(rep.Elapsed.Nanoseconds())/(2*iters), "oneway-ns")
			b.ReportMetric(float64(rep.Requests)/float64(2*iters), "req-per-msg")
		}
	}
	b.Run("sim", func(b *testing.B) { run(b, dcgn.BackendSim, false, false, false, 0) })
	// sim-reliable guards the no-fault overhead of the seq/ack wire format:
	// its allocs/op baseline keeps the reliability layer's clean-path cost
	// (one ack frame + one retransmit timer per message) from creeping.
	b.Run("sim-reliable", func(b *testing.B) { run(b, dcgn.BackendSim, true, false, false, 0) })
	// sim-traced guards the full-observability request path: spans plus the
	// metrics registry must cost a bounded, fixed number of allocations per
	// run (ring buffers and cached instrument handles are set up once) —
	// the old SpawnDaemon-per-record sink allocated per traced request.
	b.Run("sim-traced", func(b *testing.B) { run(b, dcgn.BackendSim, false, true, false, 0) })
	// sim-flows adds causal flow tracing on top of sim-traced: trace/span
	// ID assignment, wire-header context and stitching metadata must stay
	// a fixed per-run cost (the ID counters live in the trace sink, wire
	// frames grow by 16 header bytes from the same pools). With Flows off
	// the sim row above is the zero-added-allocs guard.
	b.Run("sim-flows", func(b *testing.B) { run(b, dcgn.BackendSim, false, true, true, 0) })
	// sim-sharded drives the same ping-pong through the sharded engine (one
	// shard per node): windows, outbox merges and the per-shard event loops
	// must not add per-message allocations over the classic path.
	b.Run("sim-sharded", func(b *testing.B) { run(b, dcgn.BackendSim, false, false, false, 2) })
	b.Run("live", func(b *testing.B) { run(b, dcgn.BackendLive, false, false, false, 0) })
	// sim-onesided ping-pongs over the one-sided lane (Put + WinWait
	// instead of Send + Recv): no matcher entry, no receive posting, and
	// the allocs/op baseline guards the window apply path the same way sim
	// guards the matcher path.
	b.Run("sim-onesided", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cfg := dcgn.DefaultConfig()
			cfg.Nodes, cfg.CPUKernels, cfg.GPUs = 2, 1, 0
			cfg.OneSided = true
			job := dcgn.NewJob(cfg)
			job.SetCPUKernel(func(c *dcgn.CPUCtx) {
				buf := make([]byte, payload)
				win := make([]byte, payload)
				c.RegisterWindow(0, win)
				c.Barrier()
				peer := 1 - c.Rank()
				for k := 1; k <= iters; k++ {
					if c.Rank() == 0 {
						if err := c.Put(peer, 0, 0, buf); err != nil {
							b.Error(err)
							return
						}
						c.WinWait(0, k)
					} else {
						c.WinWait(0, k)
						if err := c.Put(peer, 0, 0, buf); err != nil {
							b.Error(err)
							return
						}
					}
				}
			})
			rep, err := job.Run()
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(rep.Elapsed.Nanoseconds())/(2*iters), "oneway-ns")
		}
	})
	// sim-triggered streams GPU-enqueued descriptors through the NIC model
	// into a remote CPU window — the full tentpole path (descriptor ring,
	// doorbell, direct fire). Its allocs/op baseline guards the
	// device-sourced one-sided path end to end.
	b.Run("sim-triggered", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cfg := dcgn.DefaultConfig()
			cfg.Nodes, cfg.CPUKernels, cfg.GPUs, cfg.SlotsPerGPU = 2, 1, 1, 1
			cfg.OneSided = true
			job := dcgn.NewJob(cfg)
			rm := job.Ranks()
			srcRank := rm.GPURank(0, 0, 0)
			dstRank := rm.CPURank(1, 0)
			win := make([]byte, payload)
			job.SetCPUKernel(func(c *dcgn.CPUCtx) {
				if c.Rank() != dstRank {
					return
				}
				// Registered at t=0, inside the device launch latency: no
				// barrier needed before the first descriptor fires.
				c.RegisterWindow(0, win)
				c.WinWait(0, iters)
			})
			job.SetGPUSetup(func(s *dcgn.GPUSetup) {
				s.Args["buf"] = s.Dev.Mem().MustAlloc(payload)
			})
			job.SetGPUKernel(1, 8, func(g *dcgn.GPUCtx) {
				if g.Rank(0) != srcRank {
					return
				}
				ptr := g.Arg("buf").(dcgn.DevPtr)
				for k := 0; k < iters; k++ {
					g.TriggerPut(0, 0, dstRank, 0, 0, ptr, payload)
					g.TriggerFence(0)
				}
			})
			rep, err := job.Run()
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(rep.Elapsed.Nanoseconds())/iters, "oneway-ns")
		}
	})
	// sim-multitenant / live-multitenant drive four of the same ping-pong
	// jobs concurrently through one multi-tenant Runtime on an unsaturated
	// cluster. Their allocs/op baselines sit within 10% of 4x the
	// corresponding single-job row — the benchguard pin that hosting a job
	// under the Runtime costs no more than running it alone, per job.
	mt := func(b *testing.B, backend string) {
		const jobs = 4
		for i := 0; i < b.N; i++ {
			r, err := dcgn.NewRuntime(dcgn.RuntimeConfig{
				Nodes:          2 * jobs,
				Transport:      dcgn.TransportConfig{Backend: backend},
				MaxVirtualTime: 30 * time.Second,
			})
			if err != nil {
				b.Fatal(err)
			}
			var handles []*dcgn.JobHandle
			for j := 0; j < jobs; j++ {
				cfg := dcgn.DefaultConfig()
				cfg.Nodes, cfg.CPUKernels, cfg.GPUs = 2, 1, 0
				cfg.Transport.Backend = backend
				if backend == dcgn.BackendLive {
					cfg.MaxVirtualTime = 30 * time.Second
				}
				job := dcgn.NewJob(cfg)
				job.SetCPUKernel(func(c *dcgn.CPUCtx) {
					buf := make([]byte, payload)
					for k := 0; k < iters; k++ {
						var err error
						switch c.Rank() {
						case 0:
							if err = c.Send(1, buf); err == nil {
								_, err = c.Recv(1, buf)
							}
						case 1:
							if _, err = c.Recv(0, buf); err == nil {
								err = c.Send(0, buf)
							}
						}
						if err != nil {
							b.Error(err)
							return
						}
					}
				})
				h, err := r.Submit(job, dcgn.SubmitOpts{Tenant: fmt.Sprintf("t%d", j%2), Weight: 1 + j%2})
				if err != nil {
					b.Fatal(err)
				}
				handles = append(handles, h)
			}
			if backend == dcgn.BackendSim {
				if err := r.Run(); err != nil {
					b.Fatal(err)
				}
			}
			var total time.Duration
			for _, h := range handles {
				rep, err := h.Wait()
				if err != nil {
					b.Fatal(err)
				}
				total += rep.Elapsed
			}
			if err := r.Close(); err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(total.Nanoseconds())/jobs/(2*iters), "perjob-oneway-ns")
		}
	}
	b.Run("sim-multitenant", func(b *testing.B) { mt(b, dcgn.BackendSim) })
	b.Run("live-multitenant", func(b *testing.B) { mt(b, dcgn.BackendLive) })
}

// BenchmarkShardedHighFanout drives the cluster-scale neighbor-exchange
// workload through the sharded engine (32 nodes over 4 shards) and reports
// its virtual completion time. The allocs/op column is guarded by
// cmd/benchguard: cross-shard delivery stages every packet through the
// coordinator's outboxes, and a copy or dropped pool reuse on that path
// multiplies across every message in a 1000-node run.
func BenchmarkShardedHighFanout(b *testing.B) {
	cfg := core.DefaultConfig()
	cfg.Nodes = 32
	cfg.Shards = 4
	cfg.MPI.TreeCollectives = true
	for i := 0; i < b.N; i++ {
		rep, _, err := apps.ScaleFanout(cfg, 2, 3)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(rep.Elapsed.Nanoseconds()), "virtual-ns")
		b.ReportMetric(float64(rep.NetPackets), "packets")
	}
}

// BenchmarkTable3Apps runs the DCGN side of the paper's §5.1 applications
// (Table 3's workloads) at golden-test sizes. Virtual-time metrics are the
// simulated results; run with -benchmem, the wall-clock ns/op and allocs/op
// columns profile the simulator itself — this is the allocation-regression
// canary for the per-message staging paths (bufpool, zero-copy relay).
func BenchmarkTable3Apps(b *testing.B) {
	b.Run("Mandelbrot", func(b *testing.B) {
		mc := apps.DefaultMandelConfig()
		mc.Width, mc.Height = 256, 128
		for i := 0; i < b.N; i++ {
			r, err := apps.MandelbrotDCGN(dcgnCfg(4, 1, 2), mc)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(r.Elapsed.Nanoseconds()), "virtual-ns")
		}
	})
	b.Run("Cannon", func(b *testing.B) {
		cc := apps.DefaultCannonConfig()
		cc.N = 256
		cc.RealMath = true
		for i := 0; i < b.N; i++ {
			r, err := apps.CannonDCGN(dcgnCfg(2, 0, 2), cc)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(r.Elapsed.Nanoseconds()), "virtual-ns")
		}
	})
	b.Run("NBody", func(b *testing.B) {
		nc := apps.DefaultNBodyConfig()
		nc.Bodies = 1024
		nc.Steps = 2
		nc.RealMath = true
		for i := 0; i < b.N; i++ {
			r, err := apps.NBodyDCGN(dcgnCfg(4, 0, 2), nc)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(r.Elapsed.Nanoseconds()), "virtual-ns")
		}
	})
}

func sizeName(n int) string {
	switch {
	case n == 0:
		return "0B"
	case n < 1<<20:
		return fmt.Sprintf("%dkB", n>>10)
	default:
		return fmt.Sprintf("%dMB", n>>20)
	}
}

// BenchmarkAblationFutureHardware quantifies the paper's §7 "Looking
// Forward" prediction: with device-to-CPU signaling and direct device-NIC
// transfers, DCGN's GPU-sourced message cost collapses toward the raw MPI
// baseline ("performance to rival that of CPU-based communication
// libraries").
func BenchmarkAblationFutureHardware(b *testing.B) {
	modes := []struct {
		name           string
		signal, direct bool
	}{
		{"classic-polling", false, false},
		{"device-signal", true, false},
		{"signal+gpudirect", true, true},
	}
	for _, size := range []int{0, 1 << 20} {
		for _, m := range modes {
			b.Run(fmt.Sprintf("%s/%s", m.name, sizeName(size)), func(b *testing.B) {
				cfg := core.DefaultConfig()
				cfg.FutureHW.DeviceSignal = m.signal
				cfg.FutureHW.GPUDirect = m.direct
				for i := 0; i < b.N; i++ {
					d, err := apps.DCGNSendOneWay(cfg, apps.EPGPU, apps.EPGPU, size)
					if err != nil {
						b.Fatal(err)
					}
					b.ReportMetric(float64(d.Nanoseconds()), "oneway-ns")
				}
			})
		}
		b.Run(fmt.Sprintf("raw-MPI-baseline/%s", sizeName(size)), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				d, err := apps.MPISendOneWay(gas.DefaultConfig(), size)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(d.Nanoseconds()), "oneway-ns")
			}
		})
	}
}

// BenchmarkAblationMapReduceSlots runs the paper's §3.1 motivating
// map-reduce in both scenarios — uniform element costs and a heavy tail —
// across slot counts, quantifying when slot virtualization pays.
func BenchmarkAblationMapReduceSlots(b *testing.B) {
	for _, tail := range []bool{false, true} {
		scenario := "uniform"
		if tail {
			scenario = "heavytail"
		}
		for _, slots := range []int{1, 2, 4} {
			b.Run(fmt.Sprintf("%s/%dslots", scenario, slots), func(b *testing.B) {
				mr := apps.DefaultMapReduceConfig(slots)
				if !tail {
					mr.SlowEvery = 0
				}
				for i := 0; i < b.N; i++ {
					res, err := apps.MapReduceDCGN(dcgnCfg(1, 1, 1), mr)
					if err != nil {
						b.Fatal(err)
					}
					if !res.Verified {
						b.Fatal("wrong reduction")
					}
					b.ReportMetric(float64(res.Elapsed.Nanoseconds()), "makespan-ns")
				}
			})
		}
	}
}

// BenchmarkAblationPipelineVsDynamic compares the §2.3 static GAS pipeline
// against DCGN's dynamic work queue under uniform and skewed stage costs.
func BenchmarkAblationPipelineVsDynamic(b *testing.B) {
	for _, skewed := range []bool{false, true} {
		scenario := "uniform"
		if skewed {
			scenario = "skewed"
		}
		b.Run(scenario, func(b *testing.B) {
			pc := apps.DefaultPipelineConfig(skewed)
			for i := 0; i < b.N; i++ {
				g, err := apps.PipelineGAS(gasCfg(2, 1, 2), pc)
				if err != nil {
					b.Fatal(err)
				}
				d, err := apps.PipelineDCGN(dcgnCfg(2, 1, 2), pc)
				if err != nil {
					b.Fatal(err)
				}
				if !g.Verified || !d.Verified {
					b.Fatal("verification failed")
				}
				b.ReportMetric(float64(g.Elapsed.Nanoseconds()), "gas-pipeline-ns")
				b.ReportMetric(float64(d.Elapsed.Nanoseconds()), "dcgn-dynamic-ns")
			}
		})
	}
}
