// Command mandelbrot runs the paper's dynamic work-queue application (§4,
// Fig. 5) through the public API: a CPU master (rank 0) hands image strips
// to GPU workers on demand; workers compute escape iterations on the device
// and send the strips back. Two runs with different seeds show different
// strip-to-worker distributions — the point of the paper's Fig. 5.
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"log"
	"time"

	"dcgn"
)

var (
	width   = flag.Int("width", 256, "image width in pixels")
	height  = flag.Int("height", 128, "image height in pixels")
	maxIter = flag.Int("iter", 96, "maximum escape iterations")
	rows    = flag.Int("strip", 8, "rows per work strip")
	seed    = flag.Int64("seed", 1, "timing-jitter seed (vary to see Fig. 5's effect)")
	nodes   = flag.Int("nodes", 4, "cluster nodes")
	gpus    = flag.Int("gpus", 2, "GPUs per node")
)

const done = int32(-1)

// computeStrip fills out with iteration counts for rows [y0, y0+n) and
// returns the total iteration count (the device-compute cost driver).
func computeStrip(y0, n int, out []uint16) int64 {
	dx := 3.5 / float64(*width)
	dy := 2.5 / float64(*height)
	var total int64
	for r := 0; r < n; r++ {
		cy := -1.25 + float64(y0+r)*dy
		for i := 0; i < *width; i++ {
			cx := -2.5 + float64(i)*dx
			var zx, zy float64
			it := 0
			for ; it < *maxIter; it++ {
				x2, y2 := zx*zx, zy*zy
				if x2+y2 > 4 {
					break
				}
				zx, zy = x2-y2+cx, 2*zx*zy+cy
			}
			out[r**width+i] = uint16(it)
			total += int64(it) + 1
		}
	}
	return total
}

func main() {
	flag.Parse()
	cfg := dcgn.DefaultConfig()
	cfg.Nodes, cfg.CPUKernels, cfg.GPUs, cfg.SlotsPerGPU = *nodes, 1, *gpus, 1
	cfg.JitterFrac, cfg.JitterSeed = 0.2, *seed
	job := dcgn.NewJob(cfg)
	rm := job.Ranks()

	var workers []int
	for n := 0; n < cfg.Nodes; n++ {
		for g := 0; g < cfg.GPUs; g++ {
			workers = append(workers, rm.GPURank(n, g, 0))
		}
	}
	strips := (*height + *rows - 1) / *rows
	stripLen := 4 + 2**width**rows

	img := make([]uint16, *width**height)
	owner := make([]int, strips)
	perWorker := map[int]int{}

	job.SetCPUKernel(func(c *dcgn.CPUCtx) {
		if c.Rank() != 0 {
			return
		}
		next, returned, terms := 0, 0, 0
		buf := make([]byte, stripLen)
		reply := make([]byte, 4)
		for returned < strips || terms < len(workers) {
			st, err := c.Recv(dcgn.AnySource, buf)
			if err != nil {
				panic(err)
			}
			if st.Bytes == 4 { // work request
				if next < strips {
					binary.LittleEndian.PutUint32(reply, uint32(next))
					owner[next] = st.Source
					perWorker[st.Source]++
					next++
				} else {
					d := done
					binary.LittleEndian.PutUint32(reply, uint32(d))
					terms++
				}
				if err := c.Send(st.Source, reply); err != nil {
					panic(err)
				}
				continue
			}
			strip := int(int32(binary.LittleEndian.Uint32(buf)))
			y0 := strip * *rows
			n := min(*rows, *height-y0)
			for i := 0; i < n**width; i++ {
				img[y0**width+i] = binary.LittleEndian.Uint16(buf[4+2*i:])
			}
			returned++
		}
	})
	job.SetGPUSetup(func(s *dcgn.GPUSetup) {
		s.Args["req"] = s.Dev.Mem().MustAlloc(4)
		s.Args["strip"] = s.Dev.Mem().MustAlloc(stripLen)
	})
	job.SetGPUKernel(1, 8, func(g *dcgn.GPUCtx) {
		req := g.Arg("req").(dcgn.DevPtr)
		stripPtr := g.Arg("strip").(dcgn.DevPtr)
		pix := make([]uint16, *rows**width)
		for {
			if err := g.Send(0, 0, req, 4); err != nil {
				panic(err)
			}
			if _, err := g.Recv(0, 0, req, 4); err != nil {
				panic(err)
			}
			strip := int(int32(binary.LittleEndian.Uint32(g.Block().Bytes(req, 4))))
			if strip == int(done) {
				return
			}
			y0 := strip * *rows
			n := min(*rows, *height-y0)
			iters := computeStrip(y0, n, pix)
			g.Block().ChargeTime(time.Duration(3 * iters)) // ~3ns/iteration
			out := g.Block().Bytes(stripPtr, stripLen)
			binary.LittleEndian.PutUint32(out, uint32(strip))
			for i := 0; i < n**width; i++ {
				binary.LittleEndian.PutUint16(out[4+2*i:], pix[i])
			}
			if err := g.Send(0, 0, stripPtr, stripLen); err != nil {
				panic(err)
			}
		}
	})

	rep, err := job.Run()
	if err != nil {
		log.Fatal(err)
	}

	// Render a small ASCII view of the fractal.
	shades := []byte(" .:-=+*#%@")
	stepY, stepX := max(1, *height/24), max(1, *width/78)
	for y := 0; y < *height; y += stepY {
		line := make([]byte, 0, *width/stepX)
		for x := 0; x < *width; x += stepX {
			v := int(img[y**width+x]) * (len(shades) - 1) / *maxIter
			line = append(line, shades[v])
		}
		fmt.Println(string(line))
	}

	fmt.Printf("\n%d strips over %d GPU workers, %v virtual time, %.1f Mpixels/s\n",
		strips, len(workers), rep.Elapsed, float64(*width**height)/rep.Elapsed.Seconds()/1e6)
	fmt.Println("strips per worker (dynamic distribution — varies with -seed):")
	for _, w := range workers {
		fmt.Printf("  rank %2d: %d\n", w, perWorker[w])
	}
}
