// Command heterogeneous demonstrates DCGN on a non-uniform cluster — the
// general form of the paper's rank rule (§3.2.3): "Every node_n is given
// Cn + (Gn x Sn) ranks", with nodes free to differ. A master CPU rank
// gathers a contribution from every rank (CPU threads and GPU slots on
// very different nodes) using the heterogeneous vector-collective path,
// then scatters personalized chunks back.
package main

import (
	"fmt"
	"log"

	"dcgn"
)

const chunk = 16

func contribution(rank int) []byte {
	b := make([]byte, chunk)
	for i := range b {
		b[i] = byte(rank)
	}
	return b
}

func main() {
	cfg := dcgn.DefaultConfig()
	cfg.Nodes = 3
	// Node 0: a fat head node with 2 CPU-kernel threads and no GPUs.
	// Node 1: 1 CPU thread plus one GPU virtualized into 2 slots.
	// Node 2: a headless GPU node - 2 GPUs, no CPU kernels at all
	//         ("no CPU kernels need be run", §3.2).
	cfg.PerNode = []dcgn.NodeSpec{
		{CPUKernels: 2},
		{CPUKernels: 1, GPUs: 1, SlotsPerGPU: 2},
		{GPUs: 2, SlotsPerGPU: 1},
	}
	job := dcgn.NewJob(cfg)
	rm := job.Ranks()
	total := rm.Total()

	fmt.Printf("heterogeneous cluster: %d ranks over %d nodes\n", total, rm.Nodes())
	for r := 0; r < total; r++ {
		kind := "CPU-kernel thread"
		detail := ""
		if !rm.IsCPU(r) {
			g, s := rm.GPUSlot(r)
			kind = "GPU slot"
			detail = fmt.Sprintf(" (gpu %d, slot %d)", g, s)
		}
		fmt.Printf("  rank %d: node %d, %s%s\n", r, rm.Node(r), kind, detail)
	}

	var gathered []byte
	job.SetCPUKernel(func(c *dcgn.CPUCtx) {
		mine := contribution(c.Rank())
		var recv []byte
		if c.Rank() == 0 {
			recv = make([]byte, total*chunk)
		}
		if err := c.Gather(0, mine, recv); err != nil {
			panic(err)
		}
		if c.Rank() == 0 {
			gathered = recv
		}
		// Scatter each rank its own rank number, doubled.
		var src []byte
		if c.Rank() == 0 {
			src = make([]byte, total*chunk)
			for r := 0; r < total; r++ {
				for i := 0; i < chunk; i++ {
					src[r*chunk+i] = byte(2 * r)
				}
			}
		}
		dst := make([]byte, chunk)
		if err := c.Scatter(0, src, dst); err != nil {
			panic(err)
		}
		if dst[0] != byte(2*c.Rank()) {
			panic("CPU rank got wrong scatter chunk")
		}
	})
	job.SetGPUSetup(func(s *dcgn.GPUSetup) {
		slots := s.Job.Ranks().Spec(s.Node).SlotsPerGPU
		s.Args["mem"] = s.Dev.Mem().MustAlloc(2 * slots * chunk)
	})
	job.SetGPUKernel(2, 8, func(g *dcgn.GPUCtx) {
		slot := g.Block().Idx
		if slot >= g.Slots() {
			return // this device has fewer slots than the widest one
		}
		base := g.Arg("mem").(dcgn.DevPtr)
		sendPtr := base + dcgn.DevPtr(slot*chunk)
		recvPtr := base + dcgn.DevPtr((g.Slots()+slot)*chunk)
		copy(g.Block().Bytes(sendPtr, chunk), contribution(g.Rank(slot)))
		if err := g.Gather(slot, 0, sendPtr, chunk, dcgn.DevNull); err != nil {
			panic(err)
		}
		if err := g.Scatter(slot, 0, recvPtr, chunk, dcgn.DevNull); err != nil {
			panic(err)
		}
		if g.Block().Bytes(recvPtr, 1)[0] != byte(2*g.Rank(slot)) {
			panic("GPU slot got wrong scatter chunk")
		}
	})

	rep, err := job.Run()
	if err != nil {
		log.Fatal(err)
	}

	ok := true
	for r := 0; r < total; r++ {
		if gathered[r*chunk] != byte(r) {
			ok = false
		}
	}
	fmt.Printf("\ngather at rank 0 collected all %d contributions in rank order: %v\n", total, ok)
	fmt.Printf("scatter delivered personalized chunks to every rank (CPU and GPU alike)\n")
	fmt.Printf("virtual time: %v, %d messages through comm threads, %d polls\n",
		rep.Elapsed, rep.Requests, rep.Polls)
	if !ok {
		log.Fatal("verification failed")
	}
}
