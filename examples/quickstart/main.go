// Command quickstart is the smallest complete DCGN program: the paper's
// ping-pong example (Fig. 3) run twice — once between two CPU-kernel
// threads and once between two GPU slots sourcing communication from
// device kernels (Fig. 1) — printing the round-trip times so the overhead
// difference the paper measures is visible immediately.
package main

import (
	"fmt"
	"log"
	"time"

	"dcgn"
)

func cpuPingPong(payload int) (time.Duration, error) {
	cfg := dcgn.DefaultConfig()
	cfg.Nodes, cfg.CPUKernels, cfg.GPUs = 2, 1, 0
	job := dcgn.NewJob(cfg)
	var rtt time.Duration
	job.SetCPUKernel(func(c *dcgn.CPUCtx) {
		x := make([]byte, payload)
		switch c.Rank() {
		case 0:
			start := c.Now()
			if err := c.Send(1, x); err != nil {
				panic(err)
			}
			if _, err := c.Recv(1, x); err != nil {
				panic(err)
			}
			rtt = c.Now() - start
		case 1:
			if _, err := c.Recv(0, x); err != nil {
				panic(err)
			}
			if err := c.Send(0, x); err != nil {
				panic(err)
			}
		}
	})
	_, err := job.Run()
	return rtt, err
}

func gpuPingPong(payload int) (time.Duration, error) {
	cfg := dcgn.DefaultConfig()
	cfg.Nodes, cfg.CPUKernels, cfg.GPUs, cfg.SlotsPerGPU = 2, 0, 1, 1
	job := dcgn.NewJob(cfg)
	var rtt time.Duration
	job.SetGPUSetup(func(s *dcgn.GPUSetup) {
		// Communication payloads must live in device global memory (paper
		// Fig. 1: "for communication, we have to use global memory").
		s.Args["buf"] = s.Dev.Mem().MustAlloc(max(payload, 1))
	})
	const slot = 0
	job.SetGPUKernel(1, 8, func(g *dcgn.GPUCtx) {
		if g.Block().Idx != 0 {
			return // only block 0, "thread 0", drives the slot
		}
		buf := g.Arg("buf").(dcgn.DevPtr)
		switch g.Rank(slot) {
		case 0:
			start := g.Block().Proc().Now()
			if err := g.Send(slot, 1, buf, payload); err != nil {
				panic(err)
			}
			if _, err := g.Recv(slot, 1, buf, payload); err != nil {
				panic(err)
			}
			rtt = g.Block().Proc().Now() - start
		case 1:
			if _, err := g.Recv(slot, 0, buf, payload); err != nil {
				panic(err)
			}
			if err := g.Send(slot, 0, buf, payload); err != nil {
				panic(err)
			}
		}
	})
	_, err := job.Run()
	return rtt, err
}

func main() {
	fmt.Println("DCGN quickstart: ping-pong between two nodes (virtual time)")
	fmt.Println()
	for _, payload := range []int{4, 64 << 10, 1 << 20} {
		cpu, err := cpuPingPong(payload)
		if err != nil {
			log.Fatal(err)
		}
		gpu, err := gpuPingPong(payload)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%8d bytes: CPU:CPU rtt = %-12v GPU:GPU rtt = %-12v (%.1fx, polling overhead)\n",
			payload, cpu, gpu, float64(gpu)/float64(cpu))
	}
	fmt.Println()
	fmt.Println("GPU ranks pay the sleep-based polling cost on every message;")
	fmt.Println("the factor shrinks as transfer time dominates (paper, Fig. 6).")
}
