// Command nbody runs the paper's brute-force N-body simulation (§4
// "One-to-All") through the public API: eight GPU targets each integrate
// N/8 bodies against all N, then broadcast their updated bodies to every
// other target — entirely device-sourced communication, no CPU kernels at
// all ("no CPU kernels need be run", §3.2). It reports per-step times and
// the parallel efficiency against a single-GPU run, reproducing the
// paper's efficiency-vs-problem-size trend in miniature.
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"time"

	"dcgn"
)

var (
	bodies = flag.Int("bodies", 512, "body count (must be divisible by 8)")
	steps  = flag.Int("steps", 3, "time steps")
	seed   = flag.Int64("seed", 1, "timing-jitter seed")
)

const bodyBytes = 32 // 3xf32 pos, 3xf32 vel, f32 mass, pad

func putF32(buf []byte, v float32) {
	bits := math.Float32bits(v)
	buf[0], buf[1], buf[2], buf[3] = byte(bits), byte(bits>>8), byte(bits>>16), byte(bits>>24)
}

func getF32(buf []byte) float32 {
	return math.Float32frombits(uint32(buf[0]) | uint32(buf[1])<<8 | uint32(buf[2])<<16 | uint32(buf[3])<<24)
}

func initBodies(n int) []byte {
	buf := make([]byte, n*bodyBytes)
	for i := 0; i < n; i++ {
		b := buf[i*bodyBytes:]
		putF32(b[0:], float32(math.Sin(float64(i)*0.7))*100)
		putF32(b[4:], float32(math.Cos(float64(i)*1.3))*100)
		putF32(b[8:], float32(math.Sin(float64(i)*2.1))*100)
		putF32(b[24:], 1+float32(i%7))
	}
	return buf
}

// step integrates bodies [lo,hi) against all n bodies (softened gravity).
func step(all []byte, lo, hi int) {
	n := len(all) / bodyBytes
	const dt, eps2 = 0.01, 0.5
	type vec struct{ x, y, z float32 }
	acc := make([]vec, hi-lo)
	for i := lo; i < hi; i++ {
		bi := all[i*bodyBytes:]
		xi, yi, zi := getF32(bi), getF32(bi[4:]), getF32(bi[8:])
		var a vec
		for j := 0; j < n; j++ {
			bj := all[j*bodyBytes:]
			dx, dy, dz := getF32(bj)-xi, getF32(bj[4:])-yi, getF32(bj[8:])-zi
			d2 := dx*dx + dy*dy + dz*dz + eps2
			inv := float32(1 / math.Sqrt(float64(d2)))
			f := getF32(bj[24:]) * inv * inv * inv
			a.x += f * dx
			a.y += f * dy
			a.z += f * dz
		}
		acc[i-lo] = a
	}
	for i := lo; i < hi; i++ {
		b := all[i*bodyBytes:]
		a := acc[i-lo]
		vx, vy, vz := getF32(b[12:])+a.x*dt, getF32(b[16:])+a.y*dt, getF32(b[20:])+a.z*dt
		putF32(b[12:], vx)
		putF32(b[16:], vy)
		putF32(b[20:], vz)
		putF32(b[0:], getF32(b[0:])+vx*dt)
		putF32(b[4:], getF32(b[4:])+vy*dt)
		putF32(b[8:], getF32(b[8:])+vz*dt)
	}
}

// chargePerChunk is the device time per interaction (20 flops at an
// achieved fraction of G92 peak).
func charge(interactions float64) time.Duration {
	return time.Duration(interactions * 20 / (500e9 * 0.12) * 1e9)
}

func run(targets int) (time.Duration, []byte, error) {
	cfg := dcgn.DefaultConfig()
	switch targets {
	case 1:
		cfg.Nodes, cfg.GPUs = 1, 1
	case 8:
		cfg.Nodes, cfg.GPUs = 4, 2
	default:
		return 0, nil, fmt.Errorf("unsupported target count %d", targets)
	}
	cfg.CPUKernels = 0
	cfg.SlotsPerGPU = 1
	cfg.JitterSeed = *seed
	total := *bodies * bodyBytes
	if cfg.Device.MemBytes < 2*total {
		cfg.Device.MemBytes = 2*total + (1 << 20)
	}
	job := dcgn.NewJob(cfg)
	rm := job.Ranks()
	rankOf := make([]int, targets)
	for t := range rankOf {
		rankOf[t] = rm.GPURank(t/cfg.GPUs, t%cfg.GPUs, 0)
	}
	chunk := *bodies / targets

	var elapsed time.Duration
	var final []byte
	job.SetGPUSetup(func(s *dcgn.GPUSetup) {
		ptr := s.Dev.Mem().MustAlloc(total)
		s.Dev.CopyIn(s.Proc, s.Bus, ptr, initBodies(*bodies))
		s.Args["bodies"] = ptr
		s.Args["t"] = s.Node*cfg.GPUs + s.GPU
	})
	job.SetGPUKernel(1, 8, func(g *dcgn.GPUCtx) {
		t := g.Arg("t").(int)
		ptr := g.Arg("bodies").(dcgn.DevPtr)
		lo, hi := t*chunk, (t+1)*chunk
		g.Barrier(0)
		start := g.Block().Proc().Now()
		for s := 0; s < *steps; s++ {
			step(g.Block().Bytes(ptr, total), lo, hi)
			g.Block().ChargeTime(charge(float64(chunk) * float64(*bodies)))
			for root := 0; root < targets; root++ {
				cPtr := ptr + dcgn.DevPtr(root*chunk*bodyBytes)
				if err := g.Bcast(0, rankOf[root], cPtr, chunk*bodyBytes); err != nil {
					panic(err)
				}
			}
		}
		if t == 0 {
			elapsed = g.Block().Proc().Now() - start
		}
	})
	job.SetGPUTeardown(func(s *dcgn.GPUSetup) {
		if s.Args["t"].(int) == 0 {
			final = make([]byte, total)
			s.Dev.CopyOut(s.Proc, s.Bus, s.Args["bodies"].(dcgn.DevPtr), final)
		}
	})
	if _, err := job.Run(); err != nil {
		return 0, nil, err
	}
	return elapsed, final, nil
}

func main() {
	flag.Parse()
	if *bodies%8 != 0 {
		log.Fatal("-bodies must be divisible by 8")
	}

	t1, _, err := run(1)
	if err != nil {
		log.Fatal(err)
	}
	t8, final, err := run(8)
	if err != nil {
		log.Fatal(err)
	}

	// Verify the distributed physics against the sequential integration.
	ref := initBodies(*bodies)
	for s := 0; s < *steps; s++ {
		step(ref, 0, *bodies)
	}
	worst := 0.0
	for i := 0; i < len(ref); i += 4 {
		d := math.Abs(float64(getF32(ref[i:]) - getF32(final[i:])))
		if d > worst {
			worst = d
		}
	}

	eff := float64(t1) / float64(t8) / 8
	fmt.Printf("N-body: %d bodies, %d steps, 8 GPU targets (4 nodes x 2 GPUs)\n", *bodies, *steps)
	fmt.Printf("single GPU: %v   8 GPUs: %v   speedup %.2fx   efficiency %.0f%%\n",
		t1, t8, float64(t1)/float64(t8), 100*eff)
	fmt.Printf("physics check vs sequential integration: max deviation %.2g", worst)
	if worst < 1e-2 {
		fmt.Println("  -> PASS")
	} else {
		fmt.Println("  -> FAIL")
		log.Fatal("verification failed")
	}
	fmt.Println("\nRaise -bodies to watch efficiency climb (paper: 28% @4k, 64% @16k, >90% @32k).")
}
