// Command cannon runs Cannon's distributed dense matrix multiplication (§4
// "Simultaneous Communication") through the public API: four GPU targets in
// a 2x2 grid multiply C = A x B, rotating chunks with the combined SendRecv
// primitive (one mailbox transaction — the optimization §5.1 credits for
// bringing DCGN within a few percent of GAS+MPI). The result is verified
// against a direct multiply.
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"time"

	"dcgn"
)

var (
	dim  = flag.Int("n", 128, "matrix dimension (must be divisible by 2)")
	seed = flag.Int64("seed", 1, "timing-jitter seed")
)

func a(i, j int) float32 { return float32((i*7+j*3)%13) - 6 }
func b(i, j int) float32 { return float32((i*5+j*11)%17) - 8 }

func putF32(buf []byte, v float32) {
	bits := math.Float32bits(v)
	buf[0], buf[1], buf[2], buf[3] = byte(bits), byte(bits>>8), byte(bits>>16), byte(bits>>24)
}

func getF32(buf []byte) float32 {
	return math.Float32frombits(uint32(buf[0]) | uint32(buf[1])<<8 | uint32(buf[2])<<16 | uint32(buf[3])<<24)
}

func main() {
	flag.Parse()
	const q = 2 // 2x2 grid of targets
	n := *dim / q
	if n*q != *dim {
		log.Fatalf("n=%d must be divisible by %d", *dim, q)
	}
	chunkBytes := 4 * n * n

	cfg := dcgn.DefaultConfig()
	cfg.Nodes, cfg.CPUKernels, cfg.GPUs, cfg.SlotsPerGPU = 2, 0, 2, 1
	cfg.JitterSeed = *seed
	if cfg.Device.MemBytes < 8*chunkBytes {
		cfg.Device.MemBytes = 8 * chunkBytes
	}
	job := dcgn.NewJob(cfg)
	rm := job.Ranks()

	// Target t = r*q+c lives at GPU (t / GPUs) on node (t % ... ) — use the
	// rank map directly.
	rankOf := make([]int, q*q)
	for t := range rankOf {
		rankOf[t] = rm.GPURank(t/cfg.GPUs, t%cfg.GPUs, 0)
	}

	cChunks := make(map[int][]byte)
	var elapsed time.Duration

	job.SetGPUSetup(func(s *dcgn.GPUSetup) {
		t := s.Node*cfg.GPUs + s.GPU
		r, c := t/q, t%q
		// Pre-skewed initial placement: A(r, (c+r)%q), B((r+c)%q, c).
		aBuf := make([]byte, chunkBytes)
		bBuf := make([]byte, chunkBytes)
		ac, br := (c+r)%q, (r+c)%q
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				putF32(aBuf[4*(i*n+j):], a(r*n+i, ac*n+j))
				putF32(bBuf[4*(i*n+j):], b(br*n+i, c*n+j))
			}
		}
		aPtr := s.Dev.Mem().MustAlloc(chunkBytes)
		bPtr := s.Dev.Mem().MustAlloc(chunkBytes)
		cPtr := s.Dev.Mem().MustAlloc(chunkBytes)
		s.Dev.CopyIn(s.Proc, s.Bus, aPtr, aBuf)
		s.Dev.CopyIn(s.Proc, s.Bus, bPtr, bBuf)
		s.Args["a"], s.Args["b"], s.Args["c"] = aPtr, bPtr, cPtr
		s.Args["t"] = t
	})
	job.SetGPUKernel(1, 8, func(g *dcgn.GPUCtx) {
		t := g.Arg("t").(int)
		r, c := t/q, t%q
		aPtr := g.Arg("a").(dcgn.DevPtr)
		bPtr := g.Arg("b").(dcgn.DevPtr)
		cPtr := g.Arg("c").(dcgn.DevPtr)
		left := rankOf[r*q+(c-1+q)%q]
		right := rankOf[r*q+(c+1)%q]
		up := rankOf[((r-1+q)%q)*q+c]
		down := rankOf[((r+1)%q)*q+c]

		g.Barrier(0)
		start := g.Block().Proc().Now()
		for stage := 0; stage < q; stage++ {
			// C += A x B on the device (real float32 math).
			av := g.Block().Bytes(aPtr, chunkBytes)
			bv := g.Block().Bytes(bPtr, chunkBytes)
			cv := g.Block().Bytes(cPtr, chunkBytes)
			for i := 0; i < n; i++ {
				for k := 0; k < n; k++ {
					x := getF32(av[4*(i*n+k):])
					for j := 0; j < n; j++ {
						putF32(cv[4*(i*n+j):], getF32(cv[4*(i*n+j):])+x*getF32(bv[4*(k*n+j):]))
					}
				}
			}
			g.Block().Charge(2 * float64(n) * float64(n) * float64(n) / 0.09)
			if stage == q-1 {
				break
			}
			if _, err := g.SendRecv(0, left, aPtr, chunkBytes, right, aPtr, chunkBytes); err != nil {
				panic(err)
			}
			if _, err := g.SendRecv(0, up, bPtr, chunkBytes, down, bPtr, chunkBytes); err != nil {
				panic(err)
			}
		}
		if t == 0 {
			elapsed = g.Block().Proc().Now() - start
		}
	})
	job.SetGPUTeardown(func(s *dcgn.GPUSetup) {
		t := s.Args["t"].(int)
		out := make([]byte, chunkBytes)
		s.Dev.CopyOut(s.Proc, s.Bus, s.Args["c"].(dcgn.DevPtr), out)
		cChunks[t] = out
	})

	if _, err := job.Run(); err != nil {
		log.Fatal(err)
	}

	// Verify against a direct multiply.
	errs := 0
	for t, chunk := range cChunks {
		r, c := t/q, t%q
		for i := 0; i < n && errs < 5; i++ {
			for j := 0; j < n && errs < 5; j++ {
				var want float32
				for k := 0; k < *dim; k++ {
					want += a(r*n+i, k) * b(k, c*n+j)
				}
				got := getF32(chunk[4*(i*n+j):])
				if math.Abs(float64(got-want)) > 1e-2*math.Max(1, math.Abs(float64(want))) {
					fmt.Printf("MISMATCH C[%d][%d] = %v, want %v\n", r*n+i, c*n+j, got, want)
					errs++
				}
			}
		}
	}
	flops := 2 * float64(*dim) * float64(*dim) * float64(*dim)
	fmt.Printf("Cannon's algorithm: %dx%d on 4 GPU targets (2 nodes x 2 GPUs)\n", *dim, *dim)
	fmt.Printf("multiply phase: %v virtual time, %.1f GFLOPS aggregate\n", elapsed, flops/elapsed.Seconds()/1e9)
	if errs == 0 {
		fmt.Println("verification: PASS (matches direct multiply)")
	} else {
		log.Fatal("verification: FAIL")
	}
}
