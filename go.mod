module dcgn

go 1.22
