# Local targets mirroring .github/workflows/ci.yml, so `make ci` runs the
# same gate the workflow enforces.

GO ?= go

.PHONY: build vet fmt lintdoc test race race-live bench bench-json bench-onesided benchguard chaos onesided multitenant loadgen trace-export flows scale ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Fails if any file is unformatted (CI behavior); run `gofmt -w .` to fix.
fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "unformatted files:" >&2; \
		echo "$$out" >&2; \
		exit 1; \
	fi

# Doc lint: every exported declaration needs a doc comment (go/ast-based,
# no external linter).
lintdoc:
	$(GO) run ./cmd/lintdoc

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/...

# Live-backend smoke under the race detector: the goroutine transport and
# progress engine, driven end to end through the bench ping-pong.
race-live:
	$(GO) test -race ./internal/transport/live/
	$(GO) test -race ./internal/core/ -run 'Conformance|Live'
	$(GO) run -race ./cmd/dcgn-bench -backend live -exp pingpong

# Bench smoke: every benchmark runs exactly once so they can't bit-rot.
bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./...

# Wall-clock throughput and allocation profile of the hot workloads
# (high-fanout matching + Table 3 apps), written as JSON.
bench-json:
	$(GO) run ./cmd/dcgn-bench -json BENCH_6.json

# Classic-vs-triggered one-sided ablation: GPU->CPU one-way latency over
# both paths per Fig. 6 size, written as JSON.
bench-onesided:
	$(GO) run ./cmd/dcgn-bench -onesided BENCH_7.json

# One-sided lane gate: conformance + triggered-path suite and the chaos
# differential under the race detector, then the ablation JSON.
onesided:
	$(GO) test -race ./internal/core/ -run 'OneSided|Triggered'
	$(GO) test -race ./internal/core/ -run 'ChaosOneSided'
	$(GO) run ./cmd/dcgn-bench -onesided BENCH_7.json

# Allocation tripwire: fails if allocs/op on the matching benchmarks
# regresses >20% against the committed baseline.
benchguard:
	$(GO) test -run='^$$' -bench='BenchmarkMatchIndex|BenchmarkHighFanoutMatching|BenchmarkEnginePingPong/(sim|live-multitenant)|BenchmarkShardedHighFanout|BenchmarkLoadgenArrivals' \
		-benchtime=1x -benchmem ./... | $(GO) run ./cmd/benchguard -baseline testdata/bench_baseline.json

# Scale smoke mirroring the CI scale/determinism matrix: a 1024-node sharded
# run (virtual results asserted identical to -shards 1) plus the seeded
# shard-determinism diff at shard counts 1, 2 and 8 on 256 nodes.
scale:
	$(GO) run ./cmd/dcgn-bench -nodes 1024 -shards 8
	$(GO) run ./cmd/dcgn-bench -scale-verify "1,2,8" -nodes 256

# Chaos smoke: the wire-hardening differential (reliability layer vs
# injected faults) under the race detector on both backends, plus the
# lossy-wire application runs and a seeded standalone chaos run.
chaos:
	$(GO) test -race ./internal/core/ -run 'Chaos|Reliable'
	$(GO) test ./internal/apps/ -run 'SurvivesLossyWire'
	$(GO) run -race ./cmd/dcgn-bench -chaos -backend live -chaos-collfail 0.2 -chaos-seed 11

# Multi-tenant runtime gate: the Runtime suite (admission, fair-share,
# isolation, cancel, control API) under the race detector — including the
# 8-concurrent-live-jobs test — plus the per-job-overhead benches and the
# fairness/overhead JSON report.
multitenant:
	$(GO) test -race ./internal/core/ -run 'Runtime'
	$(GO) test -run='^$$' -bench='BenchmarkEnginePingPong/(sim-multitenant|live-multitenant)' -benchtime=1x -benchmem .
	$(GO) run ./cmd/dcgn-bench -jobs 8 -tenants "light:1,heavy:3" -multitenant-out BENCH_8.json

# Loadgen gate mirroring the CI loadgen-smoke job: the workload-layer
# suite under the race detector, a seeded Poisson run on the sim backend
# diffed for byte-identical SLO reports, and the same preset on the live
# backend.
loadgen:
	$(GO) test -race ./internal/loadgen/
	$(GO) run ./cmd/dcgn-loadgen -preset mixed -rate 300 -duration 1s -seed 7 -o /tmp/dcgn-slo-a.json
	$(GO) run ./cmd/dcgn-loadgen -preset mixed -rate 300 -duration 1s -seed 7 -o /tmp/dcgn-slo-b.json
	diff /tmp/dcgn-slo-a.json /tmp/dcgn-slo-b.json
	$(GO) run ./cmd/dcgn-loadgen -preset chat -rate 100 -duration 1s -backend live -nodes 8 -seed 7 -o /tmp/dcgn-slo-live.json

# Exporter validation: the typed-struct schema tests plus a 4-node fixture
# run through every dcgn-trace output format.
trace-export:
	$(GO) test ./cmd/dcgn-trace/ ./internal/obs/
	$(GO) run ./cmd/dcgn-trace -nodes 4 -format chrome -o /tmp/dcgn-trace.json
	$(GO) run ./cmd/dcgn-trace -nodes 4 -format csv -o /tmp/dcgn-trace.csv
	$(GO) run ./cmd/dcgn-trace -nodes 4 -metrics > /dev/null

# Causal flow-tracing gate: the stitching/critical-path suites under the
# race detector, the chaos differential with flows on, a seeded
# determinism diff of the dcgn-trace critical-path text (two runs must
# render byte-identically), a Perfetto flow-event schema check on the
# exported chrome trace, and the flows-on loadgen determinism diff.
flows:
	$(GO) test -race ./internal/obs/flow/
	$(GO) test -race ./internal/core/ -run 'Flow|ChaosDifferentialFlows'
	$(GO) test ./internal/obs/ -run 'ChromeTraceFlowEvents'
	$(GO) run ./cmd/dcgn-trace -nodes 4 -critical-path -format chrome -o /tmp/dcgn-flow.json > /tmp/dcgn-cp-a.txt
	$(GO) run ./cmd/dcgn-trace -nodes 4 -critical-path -format chrome -o /tmp/dcgn-flow.json > /tmp/dcgn-cp-b.txt
	diff /tmp/dcgn-cp-a.txt /tmp/dcgn-cp-b.txt
	grep -q '"ph": *"s"' /tmp/dcgn-flow.json
	grep -q '"ph": *"f"' /tmp/dcgn-flow.json
	grep -q '"bp": *"e"' /tmp/dcgn-flow.json
	$(GO) run ./cmd/dcgn-loadgen -preset chat -rate 300 -duration 1s -seed 7 -flows -o /tmp/dcgn-slo-flows-a.json
	$(GO) run ./cmd/dcgn-loadgen -preset chat -rate 300 -duration 1s -seed 7 -flows -o /tmp/dcgn-slo-flows-b.json
	diff /tmp/dcgn-slo-flows-a.json /tmp/dcgn-slo-flows-b.json

ci: build vet fmt lintdoc test race race-live bench benchguard chaos onesided multitenant loadgen trace-export flows scale
