# Local targets mirroring .github/workflows/ci.yml, so `make ci` runs the
# same gate the workflow enforces.

GO ?= go

.PHONY: build vet fmt test race bench ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Fails if any file is unformatted (CI behavior); run `gofmt -w .` to fix.
fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "unformatted files:" >&2; \
		echo "$$out" >&2; \
		exit 1; \
	fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/...

# Bench smoke: every benchmark runs exactly once so they can't bit-rot.
bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./...

ci: build vet fmt test race bench
