package dcgn_test

import (
	"fmt"

	"dcgn"
)

// Example reproduces the paper's Fig. 3 ping-pong through the public API.
func Example() {
	cfg := dcgn.DefaultConfig()
	cfg.Nodes, cfg.CPUKernels, cfg.GPUs = 2, 1, 0
	job := dcgn.NewJob(cfg)
	job.SetCPUKernel(func(c *dcgn.CPUCtx) {
		x := []byte{42, 0, 0, 0}
		switch c.Rank() {
		case 0:
			c.Send(1, x)
			c.Recv(1, x)
			fmt.Printf("rank 0 got back %d\n", x[0])
		case 1:
			c.Recv(0, x)
			x[0]++
			c.Send(0, x)
		}
	})
	if _, err := job.Run(); err != nil {
		fmt.Println("error:", err)
	}
	// Output: rank 0 got back 43
}

// ExampleGPUCtx_Send shows device-sourced communication (the paper's
// Fig. 1): a GPU kernel sends directly to a CPU rank, with the payload in
// device global memory.
func ExampleGPUCtx_Send() {
	cfg := dcgn.DefaultConfig()
	cfg.Nodes, cfg.CPUKernels, cfg.GPUs, cfg.SlotsPerGPU = 1, 1, 1, 1
	job := dcgn.NewJob(cfg)
	job.SetCPUKernel(func(c *dcgn.CPUCtx) {
		buf := make([]byte, 5)
		st, _ := c.Recv(dcgn.AnySource, buf)
		fmt.Printf("CPU rank 0 heard %q from rank %d\n", buf, st.Source)
	})
	job.SetGPUSetup(func(s *dcgn.GPUSetup) {
		ptr := s.Dev.Mem().MustAlloc(8)
		copy(s.Dev.Bytes(ptr, 5), "hello")
		s.Args["msg"] = ptr
	})
	job.SetGPUKernel(1, 8, func(g *dcgn.GPUCtx) {
		const slot = 0
		g.Send(slot, 0, g.Arg("msg").(dcgn.DevPtr), 5)
	})
	if _, err := job.Run(); err != nil {
		fmt.Println("error:", err)
	}
	// Output: CPU rank 0 heard "hello" from rank 1
}

// ExampleConfig_perNode builds a heterogeneous cluster with the paper's
// general rank rule: node n owns Cn + Gn*Sn consecutive ranks.
func ExampleConfig_perNode() {
	cfg := dcgn.DefaultConfig()
	cfg.Nodes = 2
	cfg.PerNode = []dcgn.NodeSpec{
		{CPUKernels: 1},
		{GPUs: 2, SlotsPerGPU: 2},
	}
	job := dcgn.NewJob(cfg)
	rm := job.Ranks()
	fmt.Printf("total ranks: %d\n", rm.Total())
	fmt.Printf("rank 0 on node %d is CPU: %v\n", rm.Node(0), rm.IsCPU(0))
	g, s := rm.GPUSlot(4)
	fmt.Printf("rank 4 on node %d is gpu %d slot %d\n", rm.Node(4), g, s)
	// Output:
	// total ranks: 5
	// rank 0 on node 0 is CPU: true
	// rank 4 on node 1 is gpu 1 slot 1
}
