package dcgn_test

// Regression tests for the buffer-pool refactor: zero-copy wire relay,
// GPU mailbox truncation, and exact pool accounting. These guard the
// perf-PR invariants that -benchmem numbers alone cannot: payloads must
// survive staging-buffer reuse, and every pooled buffer a run acquires
// must be released exactly once.

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"dcgn/internal/core"
	"dcgn/internal/device"
)

// twoNodeCPUCfg is a 2-node, CPU-only cluster (3 kernels per node).
func twoNodeCPUCfg() core.Config {
	cfg := core.DefaultConfig()
	cfg.Nodes, cfg.CPUKernels, cfg.GPUs, cfg.SlotsPerGPU = 2, 3, 0, 0
	return cfg
}

// pattern fills a deterministic per-message byte pattern so a payload
// corrupted by staging-buffer reuse cannot pass the comparison.
func pattern(n int, seed byte) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = seed ^ byte(i*13+7)
	}
	return b
}

// TestWirePayloadSurvivesStagingReuse sends a burst of distinct messages
// across the wire while the receiver stalls, so every payload sits in the
// unexpected queue while the sender's wire and envelope buffers cycle
// through the pool many times. With the zero-copy relay each queued
// message owns its pooled backing; any aliasing bug shows up as payload
// corruption here. Covers both eager (512 B) and rendezvous (16 kB) paths.
func TestWirePayloadSurvivesStagingReuse(t *testing.T) {
	const msgs = 24
	for _, size := range []int{512, 16 << 10} {
		cfg := core.DefaultConfig()
		cfg.Nodes, cfg.CPUKernels, cfg.GPUs, cfg.SlotsPerGPU = 2, 1, 0, 0
		job := core.NewJob(cfg)
		var kernErr error
		job.SetCPUKernel(func(c *core.CPUCtx) {
			switch c.Rank() {
			case 0:
				for m := 0; m < msgs; m++ {
					if err := c.Send(1, pattern(size, byte(m))); err != nil && kernErr == nil {
						kernErr = err
					}
				}
			case 1:
				// Stall so every message arrives, queues unexpected, and its
				// sender-side staging buffers are recycled before we look.
				c.Compute(50 * time.Millisecond)
				buf := make([]byte, size)
				for m := 0; m < msgs; m++ {
					st, err := c.Recv(0, buf)
					if err != nil && kernErr == nil {
						kernErr = err
					}
					if st.Bytes != size || st.Source != 0 {
						t.Errorf("size %d msg %d: status %+v", size, m, st)
					}
					if !bytes.Equal(buf, pattern(size, byte(m))) {
						t.Errorf("size %d msg %d: payload corrupted after staging reuse", size, m)
					}
				}
			}
			c.Barrier()
		})
		rep, err := job.Run()
		if err != nil {
			t.Fatalf("size %d: %v", size, err)
		}
		if kernErr != nil {
			t.Fatalf("size %d: %v", size, kernErr)
		}
		if rep.PoolAcquires != rep.PoolReleases {
			t.Errorf("size %d: pool leak: %d acquires vs %d releases",
				size, rep.PoolAcquires, rep.PoolReleases)
		}
	}
}

// TestGPURecvTruncation drives the mbTrunc mailbox word end to end: a CPU
// rank sends 16 bytes at a GPU slot that posted a 4-byte device buffer.
// The slot must observe ErrTruncate and the truncated byte count through
// the mailbox, with exactly the delivered prefix landing in device memory.
func TestGPURecvTruncation(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.Nodes, cfg.CPUKernels, cfg.GPUs, cfg.SlotsPerGPU = 1, 1, 1, 1
	payload := pattern(16, 0xC3)

	job := core.NewJob(cfg)
	var sendErr, recvErr error
	var gotStatus core.CommStatus
	var gotBytes []byte
	job.SetCPUKernel(func(c *core.CPUCtx) {
		// Rank 1 is the device slot; truncation is receiver-side only, so
		// the send completes cleanly even though the local delivery
		// truncates (same semantics as a wire-routed send).
		sendErr = c.Send(1, payload)
	})
	job.SetGPUSetup(func(gs *core.GPUSetup) {
		gs.Args["buf"] = gs.Dev.Mem().MustAlloc(4)
	})
	job.SetGPUKernel(1, 1, func(g *core.GPUCtx) {
		ptr := g.Arg("buf").(device.Ptr)
		gotStatus, recvErr = g.Recv(0, 0, ptr, 4)
		gotBytes = append([]byte(nil), g.Device().Bytes(ptr, 4)...)
	})
	rep, err := job.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(recvErr, core.ErrTruncate) {
		t.Errorf("GPU recv error = %v, want ErrTruncate via mailbox error word", recvErr)
	}
	if sendErr != nil {
		t.Errorf("sender error = %v, want nil (truncation is receiver-side)", sendErr)
	}
	if gotStatus.Bytes != 4 || gotStatus.Source != 0 {
		t.Errorf("status = %+v, want {Source:0 Bytes:4}", gotStatus)
	}
	if !bytes.Equal(gotBytes, payload[:4]) {
		t.Errorf("device buffer = %x, want prefix %x", gotBytes, payload[:4])
	}
	if rep.PoolAcquires != rep.PoolReleases {
		t.Errorf("pool leak: %d acquires vs %d releases", rep.PoolAcquires, rep.PoolReleases)
	}
}

// TestPoolLeakGuardMixedWorkload exercises every pooled staging path in one
// run — remote sends (wire pack + envelope + zero-copy backing), local
// matches, SendRecvReplace's temp, and all collective scratch buffers — and
// asserts the job pool balances to zero outstanding buffers.
func TestPoolLeakGuardMixedWorkload(t *testing.T) {
	cfg := twoNodeCPUCfg()
	job := core.NewJob(cfg)
	var kernErr error
	fail := func(err error) {
		if err != nil && kernErr == nil {
			kernErr = err
		}
	}
	job.SetCPUKernel(func(c *core.CPUCtx) {
		me, n := c.Rank(), c.Size()
		next, prev := (me+1)%n, (me+n-1)%n

		// Cross-node and local point-to-point.
		buf := pattern(2048, byte(me))
		if me%2 == 0 {
			fail(c.Send((me+n/2)%n, buf))
		} else {
			in := make([]byte, 2048)
			_, err := c.Recv(core.AnySource, in)
			fail(err)
		}
		c.Barrier()

		// In-place ring exchange (pools a temp per call).
		ring := pattern(1024, byte(me+100))
		_, err := c.SendRecvReplace(next, prev, ring)
		fail(err)
		if !bytes.Equal(ring, pattern(1024, byte(prev+100))) {
			t.Errorf("rank %d: ring payload corrupted", me)
		}

		// Collectives: bcast, gather, scatter, alltoall.
		bc := make([]byte, 4096)
		if me == 0 {
			copy(bc, pattern(4096, 0x5A))
		}
		fail(c.Bcast(0, bc))
		if !bytes.Equal(bc, pattern(4096, 0x5A)) {
			t.Errorf("rank %d: bcast payload corrupted", me)
		}

		var gathered []byte
		if me == 1 {
			gathered = make([]byte, n*256)
		}
		fail(c.Gather(1, pattern(256, byte(me+1)), gathered))

		var scattered []byte
		if me == 2 {
			scattered = make([]byte, n*128)
			for r := 0; r < n; r++ {
				copy(scattered[r*128:], pattern(128, byte(r+50)))
			}
		}
		chunk := make([]byte, 128)
		fail(c.Scatter(2, scattered, chunk))
		if !bytes.Equal(chunk, pattern(128, byte(me+50))) {
			t.Errorf("rank %d: scatter chunk corrupted", me)
		}

		a2aSend := make([]byte, n*64)
		for r := 0; r < n; r++ {
			copy(a2aSend[r*64:], pattern(64, byte(me*16+r)))
		}
		a2aRecv := make([]byte, n*64)
		fail(c.AllToAll(a2aSend, a2aRecv))
		for r := 0; r < n; r++ {
			if !bytes.Equal(a2aRecv[r*64:(r+1)*64], pattern(64, byte(r*16+me))) {
				t.Errorf("rank %d: alltoall chunk from %d corrupted", me, r)
			}
		}
		c.Barrier()
	})
	rep, err := job.Run()
	if err != nil {
		t.Fatal(err)
	}
	if kernErr != nil {
		t.Fatal(kernErr)
	}
	if rep.PoolAcquires == 0 {
		t.Fatal("workload acquired no pooled buffers; leak guard is vacuous")
	}
	if rep.PoolAcquires != rep.PoolReleases {
		t.Errorf("pool leak: %d acquires vs %d releases (outstanding %d)",
			rep.PoolAcquires, rep.PoolReleases, int64(rep.PoolAcquires)-int64(rep.PoolReleases))
	}
}

// TestPoolLeakGuardGPUTraffic runs GPU-sourced cross-node traffic so the
// device staging buffers (buildRequest/writeBack) and the GPU collective
// path flow through the leak check too.
func TestPoolLeakGuardGPUTraffic(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.Nodes, cfg.CPUKernels, cfg.GPUs, cfg.SlotsPerGPU = 2, 0, 1, 1
	payload := pattern(1024, 0x7E)

	job := core.NewJob(cfg)
	var recvErr error
	var got []byte
	job.SetGPUSetup(func(gs *core.GPUSetup) {
		gs.Args["buf"] = gs.Dev.Mem().MustAlloc(1024)
	})
	job.SetGPUKernel(1, 1, func(g *core.GPUCtx) {
		ptr := g.Arg("buf").(device.Ptr)
		switch g.Rank(0) {
		case 0:
			copy(g.Device().Bytes(ptr, 1024), payload)
			if err := g.Send(0, 1, ptr, 1024); err != nil {
				recvErr = err
			}
		case 1:
			if _, err := g.Recv(0, 0, ptr, 1024); err != nil {
				recvErr = err
			}
			got = append([]byte(nil), g.Device().Bytes(ptr, 1024)...)
		}
		g.Barrier(0)
	})
	rep, err := job.Run()
	if err != nil {
		t.Fatal(err)
	}
	if recvErr != nil {
		t.Fatal(recvErr)
	}
	if !bytes.Equal(got, payload) {
		t.Error("GPU-to-GPU wire payload corrupted")
	}
	if rep.PoolAcquires == 0 {
		t.Fatal("GPU workload acquired no pooled buffers; leak guard is vacuous")
	}
	if rep.PoolAcquires != rep.PoolReleases {
		t.Errorf("pool leak: %d acquires vs %d releases", rep.PoolAcquires, rep.PoolReleases)
	}
}
